package adversary

import (
	"context"
	"math"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"rendezvous/internal/core"
	"rendezvous/internal/explore"
	"rendezvous/internal/graph"
	"rendezvous/internal/meetoracle"
	"rendezvous/internal/sim"
)

// TestParseTier keeps the flag spelling of every tier stable and
// round-tripping through String.
func TestParseTier(t *testing.T) {
	for _, tier := range []Tier{TierAuto, TierGeneric, TierTable, TierBatch, TierRing} {
		got, err := ParseTier(tier.String())
		if err != nil || got != tier {
			t.Errorf("ParseTier(%q) = %v, %v; want %v", tier.String(), got, err, tier)
		}
	}
	if _, err := ParseTier("turbo"); err == nil {
		t.Error("ParseTier(\"turbo\"): want error")
	}
}

func planFor(t *testing.T, spec Spec, space sim.SearchSpace, opts Options) *searchPlan {
	t.Helper()
	p, err := newSearchPlan(spec, space, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBatchAutoSelection pins TierAuto's dispatch among the table
// tiers: batch on dense start-pair × delay products within the batch
// budget, scalar table when the product is sparse or only the smaller
// scalar tables fit, ring when ring-eligible, generic on degenerate
// spaces (even when batch is forced).
func TestBatchAutoSelection(t *testing.T) {
	g := graph.Grid(4, 4)
	e := explore.DFS{}.Duration(g)
	spec := specFor(g, explore.DFS{}, core.Fast{}, 8)
	dense := sim.SearchSpace{L: 8, Delays: []int{0, 1, e}} // 240 starts x 3 delays

	if p := planFor(t, spec, dense, Options{}); p.tier != TierBatch {
		t.Errorf("dense sweep dispatched to %v, want batch", p.tier)
	}
	sparse := sim.SearchSpace{L: 8, StartPairs: [][2]int{{0, 1}, {2, 3}}, Delays: []int{0, 1}}
	if p := planFor(t, spec, sparse, Options{}); p.tier != TierTable {
		t.Errorf("sparse sweep dispatched to %v, want table", p.tier)
	}
	// A budget that admits the scalar tables but not the larger batch
	// tables must select the scalar scan.
	phases := len(meetoracle.Phases(e, dense.Delays))
	mid := meetoracle.EstimateBytes(g.N(), e, phases)
	if batchEst := meetoracle.EstimateBatchBytes(g.N(), e, phases, len(dense.Delays)); batchEst <= mid {
		t.Fatalf("test premise broken: batch estimate %d <= scalar estimate %d", batchEst, mid)
	}
	if p := planFor(t, spec, dense, Options{TableBudget: mid}); p.tier != TierTable {
		t.Errorf("mid-budget dense sweep dispatched to %v, want table", p.tier)
	}
	ring := specFor(graph.OrientedRing(16), explore.OrientedRingSweep{}, core.Fast{}, 8)
	if p := planFor(t, ring, sim.SearchSpace{L: 8}, Options{}); p.tier != TierRing {
		t.Errorf("ring-eligible sweep dispatched to %v, want ring", p.tier)
	}
	negative := sim.SearchSpace{L: 8, Delays: []int{-1, 0}}
	if p := planFor(t, spec, negative, Options{Tier: TierBatch}); p.tier != TierGeneric {
		t.Errorf("forced batch on a negative-delay space dispatched to %v, want generic fallback", p.tier)
	}
}

// TestTablesPreparedBeforeFanOut pins the Prepare contract the engine
// once violated: for both table tiers, every meeting-table slab (and,
// for batch, the visit masks) must exist when the plan is built —
// before any shard worker runs — and sweeping the entire space must
// construct nothing further. Lazily built tables would serialize shard
// workers on the oracle mutex inside the timed parallel region.
func TestTablesPreparedBeforeFanOut(t *testing.T) {
	g := graph.Grid(4, 4)
	e := explore.DFS{}.Duration(g)
	spec := specFor(g, explore.DFS{}, core.Fast{}, 6)
	space := sim.SearchSpace{L: 6, Delays: []int{0, 1, e, e + 7}}
	for _, tier := range []Tier{TierTable, TierBatch, TierAuto} {
		p := planFor(t, spec, space, Options{Tier: tier})
		if p.oracle == nil {
			t.Fatalf("tier %v resolved to %v: plan has no oracle", tier, p.tier)
		}
		if !p.oracle.Prepared(p.delays) {
			t.Errorf("tier %v: slabs not prepared before fan-out", tier)
		}
		if p.tier == TierBatch && !p.oracle.BatchPrepared(p.delays) {
			t.Errorf("tier %v: batch tables not prepared before fan-out", tier)
		}
		builds := p.oracle.TableBuilds()
		if builds == 0 {
			t.Errorf("tier %v: prepared oracle reports zero table builds", tier)
		}
		want, err := Search(spec, space, Options{Tier: tier})
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.sweep(context.Background(), p.labelPairs)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("tier %v: full-space sweep diverged from Search:\nwant: %+v\ngot:  %+v", tier, want, got)
		}
		if after := p.oracle.TableBuilds(); after != builds {
			t.Errorf("tier %v: %d table build(s) occurred during the sweep; all tables must exist before RunShard", tier, after-builds)
		}
	}
}

// TestPrecompileOncePerSearch pins the shared precompile step: the
// number of ScheduleFor calls a table-tier search makes is once per
// (label, start) product and independent of the worker count — the old
// per-shard caches recompiled every schedule in every shard.
func TestPrecompileOncePerSearch(t *testing.T) {
	g := graph.Grid(3, 3)
	e := explore.DFS{}.Duration(g)
	params := core.Params{L: 6}
	count := func(workers int, tier Tier) int64 {
		var calls atomic.Int64
		spec := Spec{Graph: g, Explorer: explore.DFS{}, ScheduleFor: func(l int) sim.Schedule {
			calls.Add(1)
			return core.Fast{}.Schedule(l, params)
		}}
		if _, err := Search(spec, sim.SearchSpace{L: 6, Delays: []int{0, 1, e}}, Options{Workers: workers, Tier: tier}); err != nil {
			t.Fatal(err)
		}
		return calls.Load()
	}
	for _, tier := range []Tier{TierTable, TierBatch} {
		serial, parallel := count(1, tier), count(8, tier)
		if serial != parallel {
			t.Errorf("tier %v: ScheduleFor calls grew with workers: %d serial vs %d with 8 workers", tier, serial, parallel)
		}
		// One compile per (label, start): 6 labels x 9 starts.
		if limit := int64(6 * 9); serial > limit {
			t.Errorf("tier %v: %d ScheduleFor calls, want <= %d (once per label x start)", tier, serial, limit)
		}
	}
}

// TestBatchSpeedupSmoke is the CI acceptance smoke for the batch
// executor: on the dense unmarked grid-4x4 sweep (E = 960, 240 start
// pairs x 3 delays per label pair) the batch executor must run the
// serial sweep at least 3x faster than the scalar table scan. Plan
// construction — oracle, tables, precompile, identical for both tiers
// by design — happens outside the timed region: the criterion is about
// the sweep executors, and a fixed shared setup term would only dilute
// the ratio into noise on a sweep this size. Wall-clock ratios are
// load-sensitive, so the test runs only under RDV_BENCH_SMOKE=1 — the
// dedicated CI step — and is skipped in the ordinary suite.
func TestBatchSpeedupSmoke(t *testing.T) {
	if os.Getenv("RDV_BENCH_SMOKE") == "" {
		t.Skip("set RDV_BENCH_SMOKE=1 to run the wall-clock speedup smoke")
	}
	spec, space := unmarkedSpec(), unmarkedSpace()
	measure := func(tier Tier) time.Duration {
		p := planFor(t, spec, space, Options{Tier: tier})
		if p.tier != tier {
			t.Fatalf("plan resolved to %v, want %v", p.tier, tier)
		}
		best := time.Duration(math.MaxInt64)
		for i := 0; i < 5; i++ {
			start := time.Now()
			wc, err := p.sweep(context.Background(), p.labelPairs)
			elapsed := time.Since(start)
			if err != nil {
				t.Fatal(err)
			}
			if !wc.AllMet {
				t.Fatal("executions failed to meet")
			}
			if elapsed < best {
				best = elapsed
			}
		}
		return best
	}
	table := measure(TierTable)
	batch := measure(TierBatch)
	t.Logf("table %v, batch %v, speedup %.1fx", table, batch, float64(table)/float64(batch))
	if batch*3 > table {
		t.Errorf("batch executor (%v) is not >= 3x faster than the scalar table scan (%v)", batch, table)
	}
}
