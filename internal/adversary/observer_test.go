package adversary

import (
	"path/filepath"
	"sync"
	"testing"

	"rendezvous/internal/core"
	"rendezvous/internal/explore"
	"rendezvous/internal/graph"
	"rendezvous/internal/sim"
)

// TestSearchObserverEvents pins the observer contract: plan info fires
// first, every non-restored shard gets a start/finish pair with a
// positive run count, checkpoint appends bracket only executed shards,
// the merge brackets fire exactly once — and observing changes nothing
// about the result.
func TestSearchObserverEvents(t *testing.T) {
	const L = 3
	spec := specFor(graph.OrientedRing(6), explore.OrientedRingSweep{}, core.Fast{}, L)
	space := sim.SearchSpace{L: L, Delays: []int{0, 1}}
	opts := Options{Workers: 2}

	want, err := SearchCheckpointed(spec, space, opts, CheckpointConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}

	var (
		mu        sync.Mutex
		info      PlanInfo
		infoCalls int
		restored  = -1
		started   = map[int]int{}
		finished  = map[int]int{}
		runs      int
		appends   = map[int]int{}
		merges    int
		merged    bool
	)
	obs := SearchObserver{
		PlanReady: func(pi PlanInfo) {
			mu.Lock()
			defer mu.Unlock()
			info = pi
			infoCalls++
		},
		ShardsRestored: func(r, total int) {
			mu.Lock()
			defer mu.Unlock()
			restored = r
			if total != 4 {
				t.Errorf("restored total = %d, want 4", total)
			}
		},
		ShardStarted: func(shard, shards int) {
			mu.Lock()
			defer mu.Unlock()
			started[shard]++
		},
		ShardFinished: func(shard, shards, r int, err error) {
			mu.Lock()
			defer mu.Unlock()
			finished[shard]++
			runs += r
			if err != nil {
				t.Errorf("shard %d error: %v", shard, err)
			}
		},
		CheckpointAppendStarted: func(shard int) {
			mu.Lock()
			defer mu.Unlock()
			appends[shard]++
		},
		CheckpointAppendFinished: func(shard int, err error) {
			if err != nil {
				t.Errorf("append %d error: %v", shard, err)
			}
		},
		MergeStarted: func(shards int) {
			mu.Lock()
			defer mu.Unlock()
			merges++
			if shards != 4 {
				t.Errorf("merge shards = %d, want 4", shards)
			}
		},
		MergeFinished: func() {
			mu.Lock()
			defer mu.Unlock()
			merged = true
		},
	}

	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	got, err := SearchCheckpointed(spec, space, opts, CheckpointConfig{Shards: 4, Path: path, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if got.Time.Value != want.Time.Value || got.Cost.Value != want.Cost.Value || got.Runs != want.Runs {
		t.Fatalf("observed search diverged: got %+v want %+v", got, want)
	}

	mu.Lock()
	if infoCalls != 1 {
		t.Fatalf("PlanReady fired %d times", infoCalls)
	}
	if info.Shards != 4 || info.LabelPairs == 0 || info.StartPairs == 0 || info.Delays != 2 {
		t.Fatalf("PlanInfo = %+v", info)
	}
	if info.Tier != TierRing {
		t.Fatalf("tier = %v, want TierRing for a ring spec", info.Tier)
	}
	if restored != 0 {
		t.Fatalf("restored = %d, want 0 on a fresh run", restored)
	}
	for i := 0; i < 4; i++ {
		if started[i] != 1 || finished[i] != 1 || appends[i] != 1 {
			t.Fatalf("shard %d events: started=%d finished=%d appends=%d", i, started[i], finished[i], appends[i])
		}
	}
	if runs != want.Runs {
		t.Fatalf("summed shard runs = %d, want %d", runs, want.Runs)
	}
	if merges != 1 || !merged {
		t.Fatalf("merge events: started=%d finished=%v", merges, merged)
	}

	// Resume path: all shards restored, none executed.
	started = map[int]int{}
	restored = -1
	mu.Unlock()
	if _, err := SearchCheckpointed(spec, space, opts, CheckpointConfig{Shards: 4, Path: path, Observer: obs}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if restored != 4 || len(started) != 0 {
		t.Fatalf("resume: restored=%d started=%v", restored, started)
	}
}
