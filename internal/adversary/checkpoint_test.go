package adversary

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rendezvous/internal/core"
	"rendezvous/internal/explore"
	"rendezvous/internal/graph"
	"rendezvous/internal/resultstore"
	"rendezvous/internal/sim"
)

// checkpointMatrix is the family matrix the resume-equivalence sweep
// runs over — the same families as the symmetry sweep, covering the
// ring tier (ring-6/sweep), the table tier, and the generic tier, on
// symmetric and asymmetric graphs.
type checkpointFamily struct {
	name string
	g    *graph.Graph
	ex   explore.Explorer
}

func checkpointMatrix() []checkpointFamily {
	return []checkpointFamily{
		{"ring-6-sweep", graph.OrientedRing(6), explore.OrientedRingSweep{}},
		{"ring-5-dfs", graph.OrientedRing(5), explore.DFS{}},
		{"path-5", graph.Path(5), explore.DFS{}},
		{"star-6", graph.Star(6), explore.DFS{}},
		{"grid-3x3", graph.Grid(3, 3), explore.DFS{}},
		{"torus-3x3", graph.Torus(3, 3), explore.DFS{}},
		{"hypercube-3", graph.Hypercube(3), explore.DFS{}},
		{"circulant-5", graph.CirculantComplete(5), explore.DFS{}},
	}
}

// tiersFor returns the tiers applicable to a spec (TierRing only when
// ring-eligible).
func tiersFor(spec Spec) []Tier {
	tiers := []Tier{TierAuto, TierGeneric, TierTable, TierBatch}
	if spec.FastPathEligible() {
		tiers = append(tiers, TierRing)
	}
	return tiers
}

// TestCheckpointedEquivalenceSweep pins the tentpole guarantee for
// uninterrupted runs: SearchCheckpointed (with and without a
// checkpoint file) returns a WorstCase bit-for-bit equal to Search,
// for every family x tier x symmetry mode in the sweep matrix and for
// serial and parallel worker counts.
func TestCheckpointedEquivalenceSweep(t *testing.T) {
	const L = 3
	space := sim.SearchSpace{L: L, Delays: []int{0, 1}}
	for _, f := range checkpointMatrix() {
		t.Run(f.name, func(t *testing.T) {
			spec := specFor(f.g, f.ex, core.Cheap{}, L)
			for _, tier := range tiersFor(spec) {
				for _, sym := range []Symmetry{SymmetryAuto, SymmetryOff, SymmetryForced} {
					opts := Options{Tier: tier, Symmetry: sym}
					want, err := Search(spec, space, opts)
					if err != nil {
						t.Fatalf("tier=%v sym=%v: Search: %v", tier, sym, err)
					}
					for _, workers := range []int{1, 4} {
						opts.Workers = workers
						got, err := SearchCheckpointed(spec, space, opts, CheckpointConfig{Shards: 5})
						if err != nil {
							t.Fatalf("tier=%v sym=%v workers=%d: %v", tier, sym, workers, err)
						}
						if got != want {
							t.Errorf("tier=%v sym=%v workers=%d diverged:\nsearch: %+v\nckpt:   %+v",
								tier, sym, workers, want, got)
						}
					}
					path := filepath.Join(t.TempDir(), "sweep.ckpt")
					got, err := SearchCheckpointed(spec, space, opts, CheckpointConfig{Path: path, Shards: 5})
					if err != nil {
						t.Fatalf("tier=%v sym=%v with file: %v", tier, sym, err)
					}
					if got != want {
						t.Errorf("tier=%v sym=%v with file diverged:\nsearch: %+v\nckpt:   %+v", tier, sym, want, got)
					}
				}
			}
		})
	}
}

// TestCheckpointResumeEquivalence is the acceptance criterion for
// resume: a sweep cancelled after k completed shards and rerun with
// the same checkpoint file produces a WorstCase bit-for-bit equal to
// an uninterrupted run, for every family x tier x symmetry mode. The
// resumed run must actually restore shards (not recompute from zero),
// and may replay them under a different worker count.
func TestCheckpointResumeEquivalence(t *testing.T) {
	const (
		L          = 3
		shards     = 6
		interrupt  = 2 // cancel after this many freshly computed shards
		resumeWkrs = 4
	)
	space := sim.SearchSpace{L: L, Delays: []int{0, 1}}
	for _, f := range checkpointMatrix() {
		t.Run(f.name, func(t *testing.T) {
			spec := specFor(f.g, f.ex, core.Fast{}, L)
			for _, tier := range tiersFor(spec) {
				for _, sym := range []Symmetry{SymmetryAuto, SymmetryOff, SymmetryForced} {
					want, err := Search(spec, space, Options{Tier: tier, Symmetry: sym})
					if err != nil {
						t.Fatalf("tier=%v sym=%v: Search: %v", tier, sym, err)
					}
					path := filepath.Join(t.TempDir(), "resume.ckpt")

					// Interrupted run: serial, cancelled as soon as
					// `interrupt` fresh shards completed.
					ctx, cancel := context.WithCancel(context.Background())
					restored := -1
					progress := func(completed, total int) {
						if restored < 0 {
							restored = completed
						}
						if completed-restored >= interrupt {
							cancel()
						}
					}
					_, err = SearchCheckpointed(spec, space,
						Options{Tier: tier, Symmetry: sym, Workers: 1, Context: ctx},
						CheckpointConfig{Path: path, Shards: shards, Progress: progress})
					cancel()
					if err == nil {
						t.Fatalf("tier=%v sym=%v: interrupted run completed; expected cancellation", tier, sym)
					}
					if !errors.Is(err, context.Canceled) {
						t.Fatalf("tier=%v sym=%v: interrupted run: %v, want context.Canceled", tier, sym, err)
					}

					// Resumed run: fresh context, different worker count.
					resumedFrom := -1
					got, err := SearchCheckpointed(spec, space,
						Options{Tier: tier, Symmetry: sym, Workers: resumeWkrs},
						CheckpointConfig{Path: path, Shards: shards, Progress: func(completed, total int) {
							if resumedFrom < 0 {
								resumedFrom = completed
							}
						}})
					if err != nil {
						t.Fatalf("tier=%v sym=%v: resume: %v", tier, sym, err)
					}
					if resumedFrom < interrupt {
						t.Errorf("tier=%v sym=%v: resume restored %d shards, want >= %d", tier, sym, resumedFrom, interrupt)
					}
					if got != want {
						t.Errorf("tier=%v sym=%v: resumed output diverged:\nuninterrupted: %+v\nresumed:       %+v",
							tier, sym, want, got)
					}
				}
			}
		})
	}
}

// TestCheckpointCrossTierResume pins the strongest form of the resume
// guarantee: shards checkpointed by one tier can be restored into a
// search running another tier, because all tiers are bit-for-bit
// equivalent.
func TestCheckpointCrossTierResume(t *testing.T) {
	const L = 3
	spec := specFor(graph.OrientedRing(6), explore.OrientedRingSweep{}, core.Fast{}, L)
	space := sim.SearchSpace{L: L, Delays: []int{0, 1}}
	want, err := Search(spec, space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "crosstier.ckpt")

	ctx, cancel := context.WithCancel(context.Background())
	fresh := 0
	_, err = SearchCheckpointed(spec, space, Options{Tier: TierGeneric, Workers: 1, Context: ctx},
		CheckpointConfig{Path: path, Shards: 6, Progress: func(completed, total int) {
			fresh = completed
			if completed >= 3 {
				cancel()
			}
		}})
	cancel()
	if err == nil {
		t.Fatal("interrupted generic run completed; expected cancellation")
	}
	if fresh < 3 {
		t.Fatalf("interrupted run completed %d shards, want >= 3", fresh)
	}

	restored := -1
	got, err := SearchCheckpointed(spec, space, Options{Tier: TierRing},
		CheckpointConfig{Path: path, Shards: 6, Progress: func(completed, total int) {
			if restored < 0 {
				restored = completed
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if restored < 3 {
		t.Errorf("ring-tier resume restored %d generic-tier shards, want >= 3", restored)
	}
	if got != want {
		t.Errorf("cross-tier resume diverged:\nwant: %+v\ngot:  %+v", want, got)
	}
}

// TestCheckpointTableToBatchResume is the cross-tier case the batch
// tier adds: shards checkpointed by the scalar table tier restore into
// a batch-tier search (and the combined merge equals an uninterrupted
// run), because the two table executors are bit-for-bit equivalent.
func TestCheckpointTableToBatchResume(t *testing.T) {
	const L = 3
	spec := specFor(graph.Grid(3, 3), explore.DFS{}, core.Fast{}, L)
	space := sim.SearchSpace{L: L, Delays: []int{0, 1, 5}}
	want, err := Search(spec, space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "table-to-batch.ckpt")

	ctx, cancel := context.WithCancel(context.Background())
	fresh := 0
	_, err = SearchCheckpointed(spec, space, Options{Tier: TierTable, Workers: 1, Context: ctx},
		CheckpointConfig{Path: path, Shards: 6, Progress: func(completed, total int) {
			fresh = completed
			if completed >= 3 {
				cancel()
			}
		}})
	cancel()
	if err == nil {
		t.Fatal("interrupted table run completed; expected cancellation")
	}
	if fresh < 3 {
		t.Fatalf("interrupted run completed %d shards, want >= 3", fresh)
	}

	restored := -1
	got, err := SearchCheckpointed(spec, space, Options{Tier: TierBatch},
		CheckpointConfig{Path: path, Shards: 6, Progress: func(completed, total int) {
			if restored < 0 {
				restored = completed
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if restored < 3 {
		t.Errorf("batch-tier resume restored %d table-tier shards, want >= 3", restored)
	}
	if got != want {
		t.Errorf("table-to-batch resume diverged:\nwant: %+v\ngot:  %+v", want, got)
	}
}

// TestCheckpointDiscardsForeignFile: a checkpoint written by a
// different search (different fingerprint) or a different shard
// decomposition must be discarded, not misread.
func TestCheckpointDiscardsForeignFile(t *testing.T) {
	const L = 3
	path := filepath.Join(t.TempDir(), "foreign.ckpt")
	space := sim.SearchSpace{L: L}

	ringSpec := specFor(graph.OrientedRing(6), explore.OrientedRingSweep{}, core.Cheap{}, L)
	if _, err := SearchCheckpointed(ringSpec, space, Options{}, CheckpointConfig{Path: path, Shards: 4}); err != nil {
		t.Fatal(err)
	}

	t.Run("different-search", func(t *testing.T) {
		pathSpec := specFor(graph.Path(5), explore.DFS{}, core.Cheap{}, L)
		want, err := Search(pathSpec, space, Options{})
		if err != nil {
			t.Fatal(err)
		}
		restored := -1
		got, err := SearchCheckpointed(pathSpec, space, Options{},
			CheckpointConfig{Path: path, Shards: 4, Progress: func(completed, total int) {
				if restored < 0 {
					restored = completed
				}
			}})
		if err != nil {
			t.Fatal(err)
		}
		if restored != 0 {
			t.Errorf("foreign checkpoint restored %d shards, want 0", restored)
		}
		if got != want {
			t.Errorf("result diverged after discarding foreign checkpoint:\nwant: %+v\ngot:  %+v", want, got)
		}
	})
	t.Run("different-shard-count", func(t *testing.T) {
		restored := -1
		want, err := Search(ringSpec, space, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := SearchCheckpointed(ringSpec, space, Options{},
			CheckpointConfig{Path: path, Shards: 5, Progress: func(completed, total int) {
				if restored < 0 {
					restored = completed
				}
			}})
		if err != nil {
			t.Fatal(err)
		}
		if restored != 0 {
			t.Errorf("reshaped checkpoint restored %d shards, want 0", restored)
		}
		if got != want {
			t.Errorf("result diverged after discarding reshaped checkpoint:\nwant: %+v\ngot:  %+v", want, got)
		}
	})
}

// TestCheckpointSurvivesTornWrite: garbage appended to a checkpoint (a
// crash mid-append) drops the torn tail but keeps every complete
// record.
func TestCheckpointSurvivesTornWrite(t *testing.T) {
	const L = 3
	spec := specFor(graph.OrientedRing(6), explore.OrientedRingSweep{}, core.Cheap{}, L)
	space := sim.SearchSpace{L: L}
	want, err := Search(spec, space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "torn.ckpt")
	if _, err := SearchCheckpointed(spec, space, Options{}, CheckpointConfig{Path: path, Shards: 4}); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"shard": 17, "resu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	restored := -1
	got, err := SearchCheckpointed(spec, space, Options{},
		CheckpointConfig{Path: path, Shards: 4, Progress: func(completed, total int) {
			if restored < 0 {
				restored = completed
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if restored != 4 {
		t.Errorf("torn checkpoint restored %d complete shards, want 4", restored)
	}
	if got != want {
		t.Errorf("result diverged after torn write:\nwant: %+v\ngot:  %+v", want, got)
	}
}

// TestCheckpointedUnfingerprintableFallsBack: a search whose explorer
// rejects the graph has no content address to bind a checkpoint to,
// but the generic tier can still execute it (schedules that never
// explore); SearchCheckpointed must match Search instead of failing
// on the fingerprint.
func TestCheckpointedUnfingerprintableFallsBack(t *testing.T) {
	// Eulerian rejects the star (odd degrees), but wait-only schedules
	// never invoke it, so the generic tier executes them on any graph.
	spec := Spec{
		Graph:       graph.Star(5),
		Explorer:    explore.Eulerian{},
		ScheduleFor: func(l int) sim.Schedule { return sim.Schedule{sim.SegmentWait, sim.SegmentWait} },
	}
	space := sim.SearchSpace{L: 3}
	want, err := Search(spec, space, Options{})
	if err != nil {
		t.Fatalf("Search on wait-only schedules: %v", err)
	}
	path := filepath.Join(t.TempDir(), "unfp.ckpt")
	got, err := SearchCheckpointed(spec, space, Options{}, CheckpointConfig{Path: path, Shards: 3})
	if err != nil {
		t.Fatalf("SearchCheckpointed: %v (want the uncheckpointed fallback)", err)
	}
	if got != want {
		t.Errorf("fallback diverged:\nSearch: %+v\nckpt:   %+v", want, got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("a checkpoint file was written for an unfingerprintable search")
	}
}

// TestCheckpointRejectsBitRot: a shard record that still parses as
// JSON but whose bytes were damaged (checksum mismatch) must not be
// restored — the resumed run recomputes it (and everything after it)
// and still merges to the uninterrupted output.
func TestCheckpointRejectsBitRot(t *testing.T) {
	const L = 3
	spec := specFor(graph.OrientedRing(6), explore.OrientedRingSweep{}, core.Fast{}, L)
	space := sim.SearchSpace{L: L}
	want, err := Search(spec, space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bitrot.ckpt")
	if _, err := SearchCheckpointed(spec, space, Options{}, CheckpointConfig{Path: path, Shards: 4}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside the second shard line's result payload; the
	// line stays valid JSON but its checksum no longer matches.
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 5 { // header + 4 shards
		t.Fatalf("checkpoint has %d lines, want 5", len(lines))
	}
	rotted := strings.Replace(lines[2], `"Runs":`, `"Runs":9`, 1)
	if rotted == lines[2] {
		t.Fatal("bit rot did not apply; record layout changed?")
	}
	lines[2] = rotted
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	restored := -1
	got, err := SearchCheckpointed(spec, space, Options{},
		CheckpointConfig{Path: path, Shards: 4, Progress: func(completed, total int) {
			if restored < 0 {
				restored = completed
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Errorf("restored %d shards, want 1 (everything from the rotted line on must recompute)", restored)
	}
	if got != want {
		t.Errorf("result diverged after bit rot:\nwant: %+v\ngot:  %+v", want, got)
	}
}

// TestCheckpointedErrorParity: invalid inputs must error out of
// SearchCheckpointed exactly as they do out of Search.
func TestCheckpointedErrorParity(t *testing.T) {
	spec := specFor(graph.Grid(3, 3), explore.DFS{}, core.Cheap{}, 3)
	cases := []struct {
		name  string
		space sim.SearchSpace
		opts  Options
	}{
		{"L-too-small", sim.SearchSpace{L: 1}, Options{}},
		{"equal-starts", sim.SearchSpace{L: 3, StartPairs: [][2]int{{2, 2}}}, Options{}},
		{"forced-ring-off-ring", sim.SearchSpace{L: 3}, Options{Tier: TierRing}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, wantErr := Search(spec, tc.space, tc.opts)
			if wantErr == nil {
				t.Fatal("Search unexpectedly succeeded")
			}
			_, gotErr := SearchCheckpointed(spec, tc.space, tc.opts, CheckpointConfig{})
			if gotErr == nil {
				t.Fatal("SearchCheckpointed unexpectedly succeeded")
			}
			if gotErr.Error() != wantErr.Error() {
				t.Errorf("error diverged:\nSearch:             %v\nSearchCheckpointed: %v", wantErr, gotErr)
			}
		})
	}
}

// TestSearchCached covers the caching front door: a hit is served
// verbatim from the store (provably without invoking the engine), a
// corrupt record silently recomputes and heals, and unfingerprintable
// searches fall through uncached.
func TestSearchCached(t *testing.T) {
	const L = 3
	spec := specFor(graph.OrientedRing(6), explore.OrientedRingSweep{}, core.Cheap{}, L)
	space := sim.SearchSpace{L: L}
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Search(spec, space, Options{})
	if err != nil {
		t.Fatal(err)
	}

	got, cached, err := SearchCached(store, spec, space, Options{})
	if err != nil || cached {
		t.Fatalf("cold search: cached=%v err=%v", cached, err)
	}
	if got != want {
		t.Errorf("cold result diverged: %+v != %+v", got, want)
	}

	// Poison the store with a recognizable fake: a hit must return it
	// verbatim, which proves the engine was not consulted.
	fp, err := Fingerprint(spec, space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fake := sim.WorstCase{Time: sim.Witness{Value: 123456}, Runs: 1, AllMet: true}
	if err := store.Put(fp, fake); err != nil {
		t.Fatal(err)
	}
	got, cached, err = SearchCached(store, spec, space, Options{})
	if err != nil || !cached {
		t.Fatalf("warm search: cached=%v err=%v", cached, err)
	}
	if got != fake {
		t.Errorf("hit did not come from the store: %+v", got)
	}

	// Corrupt the record: the next SearchCached must silently recompute
	// the true result and heal the store.
	entries, err := store.Index()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("store has %d entries, want 1", len(entries))
	}
	recPath := filepath.Join(store.Dir(), "objects", fp[:2], fp+".json")
	if err := os.WriteFile(recPath, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, cached, err = SearchCached(store, spec, space, Options{})
	if err != nil || cached {
		t.Fatalf("post-corruption search: cached=%v err=%v", cached, err)
	}
	if got != want {
		t.Errorf("post-corruption result diverged: %+v != %+v", got, want)
	}
	if healed, ok := store.Get(fp); !ok || healed != want {
		t.Errorf("store did not heal: ok=%v %+v", ok, healed)
	}

	// nil store and unfingerprintable searches fall through to Search.
	got, cached, err = SearchCached(nil, spec, space, Options{})
	if err != nil || cached || got != want {
		t.Errorf("nil store: got=%+v cached=%v err=%v", got, cached, err)
	}

	// A forced-but-inapplicable tier must error even when the store is
	// warm for the same fingerprint (the fingerprint excludes the tier,
	// so without the up-front check a hit would mask the error a cold
	// Search returns).
	offRing := specFor(graph.Path(5), explore.DFS{}, core.Cheap{}, L)
	if _, _, err := SearchCached(store, offRing, space, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, cached, err := SearchCached(store, offRing, space, Options{Tier: TierRing}); err == nil || cached {
		t.Errorf("forced ring off the ring with a warm store: cached=%v err=%v, want the ring-eligibility error", cached, err)
	}
	if _, cached, err := SearchCached(store, offRing, space, Options{Tier: Tier(99)}); err == nil || cached {
		t.Errorf("unknown tier with a warm store: cached=%v err=%v, want an error", cached, err)
	}
	badSpec := specFor(graph.Path(4), explore.Eulerian{}, core.Cheap{}, L)
	if _, cached, err := SearchCached(store, badSpec, space, Options{}); err == nil || cached {
		t.Errorf("unfingerprintable search: cached=%v err=%v, want engine error", cached, err)
	}
}
