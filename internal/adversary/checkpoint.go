package adversary

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"rendezvous/internal/meetoracle"
	"rendezvous/internal/model"
	"rendezvous/internal/sim"
)

// This file adds checkpoint/resume to the engine. The key to resuming
// with bit-for-bit identical output is that the shard decomposition is
// fixed by the space alone — never by the worker count — and that the
// per-shard results are folded in shard order with the same
// strictly-greater Merge the parallel engine has always used: a merge
// over any contiguous in-order partition of the enumeration yields
// exactly the serial scan's witnesses, so it cannot matter which
// shards were replayed from the checkpoint file and which were
// recomputed (or by which tier, since all tiers are bit-for-bit
// equivalent).

// DefaultCheckpointShards is the shard count a checkpointed search
// aims for when CheckpointConfig.Shards is zero: granular enough that
// an interrupted sweep loses at most a few percent of its work, small
// enough that the checkpoint file stays tiny.
const DefaultCheckpointShards = 32

// checkpointVersion versions the checkpoint file format.
const checkpointVersion = 1

// CheckpointConfig tunes SearchCheckpointed. The zero value runs a
// plain (unpersisted) sharded search with optional progress reporting.
type CheckpointConfig struct {
	// Path is the checkpoint file. Completed shards are appended to it
	// as they finish, and a later run with the same search resumes from
	// them. Empty disables persistence (Progress still fires).
	Path string
	// Shards overrides the shard count (0 = DefaultCheckpointShards,
	// clamped to the number of label pairs). A checkpoint written with
	// a different shard count is discarded on resume, never misread.
	Shards int
	// Fingerprint, when non-empty, is the search's precomputed content
	// address (Fingerprint(spec, space, opts)), saving the
	// recomputation when the caller already derived it (e.g. to name
	// the checkpoint file). It must be the fingerprint of this very
	// search: a wrong value would make resume discard or, worse,
	// restore a foreign checkpoint. Empty means compute it here.
	Fingerprint string
	// Progress, when non-nil, is called after every completed shard
	// with the number of completed shards (including ones restored from
	// the checkpoint, reported once up front) and the total. Calls are
	// serialized; the callback must not block for long.
	Progress func(completed, total int)
	// Observer receives stage-boundary events (plan ready, per-shard
	// start/finish, checkpoint appends, merge) for tracing. Like
	// Progress it lives here rather than in Options, so observation can
	// never perturb the search fingerprint. The zero value observes
	// nothing.
	Observer SearchObserver
}

// searchPlan is a search lowered to shard form: the expanded
// (symmetry-reduced) enumeration plus a sweep function that executes
// one contiguous slice of label pairs on the tier Search would have
// dispatched to. sweep is safe for concurrent calls on disjoint
// shards.
type searchPlan struct {
	labelPairs [][2]int
	startPairs [][2]int
	delays     []int
	// tier is the executor the sweep dispatches to, after auto
	// selection and degenerate-space fallbacks; oracle is the shared
	// read-only meeting-table oracle when tier is TierTable or
	// TierBatch (nil otherwise). Tests use both to pin dispatch
	// decisions and the prepared-before-fan-out contract.
	tier   Tier
	oracle *meetoracle.Oracle
	sweep  func(ctx context.Context, shard [][2]int) (sim.WorstCase, error)
}

// newSearchPlan is the engine's one tier-dispatch implementation:
// symmetry reduction, then ring/table/generic tier selection with the
// degenerate-space fallbacks, returning the per-shard executor instead
// of running it. Search drives the plan through sim.Sharded;
// SearchCheckpointed drives it through the fixed checkpoint shards —
// both therefore dispatch identically by construction (and the
// checkpointed equivalence tests pin the two entry points to each
// other bit for bit).
func newSearchPlan(spec Spec, space sim.SearchSpace, opts Options) (*searchPlan, error) {
	reduced, err := reduceSpace(spec, space, opts.Symmetry)
	if err != nil {
		return nil, err
	}
	tier := opts.Tier
	switch tier {
	case TierAuto, TierGeneric, TierTable, TierRing, TierBatch:
	default:
		return nil, fmt.Errorf("adversary: unknown tier %v", tier)
	}
	// Forced-ring eligibility errors take precedence over space
	// expansion errors.
	if tier == TierRing && !spec.FastPathEligible() {
		return nil, fmt.Errorf("adversary: TierRing forced but the spec is not ring-eligible (graph %v, explorer %s)", spec.Graph, spec.Explorer.Name())
	}
	n := spec.Graph.N()
	labelPairs, startPairs, delays, err := reduced.Expand(n)
	if err != nil {
		return nil, err
	}
	plan := &searchPlan{labelPairs: labelPairs, startPairs: startPairs, delays: delays}

	forced := tier != TierAuto
	if tier == TierAuto {
		if spec.FastPathEligible() {
			tier = TierRing
		} else {
			// The auto decision among the table tiers and generic: batch
			// when the start-pair × delay product is dense enough to fill
			// its 64 lanes and the batch tables fit the budget, else the
			// scalar table scan if its (smaller) tables fit, else generic.
			budget := opts.tableBudget()
			e := spec.Explorer.Duration(spec.Graph)
			tier = TierGeneric
			if budget >= 0 && n > 0 && e > 0 && !tableDegenerate(n, startPairs, delays) {
				phases := len(meetoracle.Phases(e, delays))
				switch {
				case len(startPairs)*len(delays) >= batchAutoMinConfigs &&
					meetoracle.EstimateBatchBytes(n, e, phases, len(delays)) <= budget:
					tier = TierBatch
				case meetoracle.EstimateBytes(n, e, phases) <= budget:
					tier = TierTable
				}
			}
		}
	}
	switch tier {
	case TierRing:
		if tableDegenerate(n, startPairs, delays) {
			tier = TierGeneric
			break
		}
		plan.tier = TierRing
		plan.sweep = func(ctx context.Context, shard [][2]int) (sim.WorstCase, error) {
			return ringShard(ctx, n, spec.ScheduleFor, shard, startPairs, delays)
		}
		return plan, nil
	case TierTable, TierBatch:
		if tableDegenerate(n, startPairs, delays) {
			tier = TierGeneric
			break
		}
		oracle, oerr := meetoracle.New(spec.Graph, spec.Explorer)
		if oerr != nil {
			if !forced {
				tier = TierGeneric
				break
			}
			name := "TierTable"
			if tier == TierBatch {
				name = "TierBatch"
			}
			return nil, fmt.Errorf("adversary: %s forced: %w", name, oerr)
		}
		compiled, cerr := precompile(oracle, spec.ScheduleFor, labelPairs, startPairs)
		if cerr != nil {
			return nil, cerr
		}
		plan.tier = tier
		plan.oracle = oracle
		if tier == TierBatch {
			oracle.PrepareBatch(delays)
			plan.sweep = func(ctx context.Context, shard [][2]int) (sim.WorstCase, error) {
				return batchShard(ctx, oracle, compiled, shard, startPairs, delays)
			}
		} else {
			oracle.Prepare(delays)
			plan.sweep = func(ctx context.Context, shard [][2]int) (sim.WorstCase, error) {
				return tableShard(ctx, oracle, compiled, shard, startPairs, delays)
			}
		}
		return plan, nil
	}
	// TierGeneric (explicit or by fallback): every shard gets its own
	// trajectory cache, as in the parallel generic search.
	plan.tier = TierGeneric
	tc := sim.NewTrajectories(spec.Graph, spec.Explorer, spec.ScheduleFor)
	plan.sweep = func(ctx context.Context, shard [][2]int) (sim.WorstCase, error) {
		return sim.SearchWith(tc.Clone(), sim.SearchSpace{LabelPairs: shard, StartPairs: startPairs, Delays: delays},
			sim.SearchOptions{Workers: 1, Context: ctx})
	}
	return plan, nil
}

// resolveShardCount clamps the configured shard count to [1, pairs]
// (with at least one shard so an empty space still sweeps once, like
// the plain search).
func resolveShardCount(pairs, requested int) int {
	shards := requested
	if shards <= 0 {
		shards = DefaultCheckpointShards
	}
	if shards > pairs {
		shards = pairs
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// shardBounds returns the half-open label-pair range of shard i of
// num, using the same contiguous split formula as sim.Sharded.
func shardBounds(pairs, num, i int) (lo, hi int) {
	return i * pairs / num, (i + 1) * pairs / num
}

// ckptHeader is the first line of a checkpoint file. Fingerprint
// binds the file to one search configuration (via the resultstore's
// canonical fingerprint) and Shards to one shard decomposition; a
// mismatch on either discards the file, so a checkpoint can never
// leak results into a different search.
type ckptHeader struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	Shards      int    `json:"shards"`
}

// ckptShard is one completed-shard line of a checkpoint file.
// Checksum guards the record the same way resultstore guards its
// records: a bit-rotted line that still parses as JSON must not be
// restored, or the resumed merge would silently diverge from an
// uninterrupted run.
type ckptShard struct {
	Shard    int           `json:"shard"`
	Result   sim.WorstCase `json:"result"`
	Checksum string        `json:"checksum"`
}

// checksum returns the record's integrity hash: SHA-256 over the
// canonical JSON encoding with the Checksum field blanked.
func (r ckptShard) checksum() string {
	r.Checksum = ""
	data, err := json.Marshal(r)
	if err != nil {
		// ckptShard contains only marshalable fields; this cannot happen.
		panic(fmt.Sprintf("adversary: marshal checkpoint record: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// stamped returns the record with its checksum filled in.
func (r ckptShard) stamped() ckptShard {
	r.Checksum = r.checksum()
	return r
}

// loadCheckpoint reads the completed-shard records of a checkpoint
// file. Every failure mode — missing file, foreign header, truncated
// or garbled line (a crash mid-append) — degrades to fewer restored
// shards, never an error; a torn trailing line drops only itself and
// anything after it.
func loadCheckpoint(path, fingerprint string, shards int) map[int]sim.WorstCase {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) == 0 {
		return nil
	}
	var hdr ckptHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return nil
	}
	if hdr.Version != checkpointVersion || hdr.Fingerprint != fingerprint || hdr.Shards != shards {
		return nil
	}
	done := make(map[int]sim.WorstCase)
	for _, line := range lines[1:] {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec ckptShard
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn write: drop this line and everything after it
		}
		if rec.Checksum == "" || rec.Checksum != rec.checksum() {
			break // bit rot: a damaged record must recompute, not restore
		}
		if rec.Shard >= 0 && rec.Shard < shards {
			done[rec.Shard] = rec.Result
		}
	}
	return done
}

// checkpointWriter appends completed-shard records to the checkpoint
// file, syncing after every record so a crash loses at most the shard
// being written (whose torn line the loader drops).
type checkpointWriter struct {
	mu sync.Mutex
	f  *os.File
}

// newCheckpointWriter (re)initializes the checkpoint file: it writes
// a fresh header plus the restored shard records to a temp file,
// renames it into place (dropping any garbage the old file carried),
// and returns a writer appending to it.
func newCheckpointWriter(path, fingerprint string, shards int, done map[int]sim.WorstCase) (*checkpointWriter, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("adversary: checkpoint: %w", err)
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return nil, fmt.Errorf("adversary: checkpoint: %w", err)
	}
	enc := json.NewEncoder(tmp)
	werr := enc.Encode(ckptHeader{Version: checkpointVersion, Fingerprint: fingerprint, Shards: shards})
	idxs := make([]int, 0, len(done))
	for i := range done {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		if werr == nil {
			werr = enc.Encode(ckptShard{Shard: i, Result: done[i]}.stamped())
		}
	}
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("adversary: checkpoint %s: %w", path, werr)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("adversary: checkpoint %s: %w", path, err)
	}
	return &checkpointWriter{f: f}, nil
}

func (w *checkpointWriter) record(shard int, wc sim.WorstCase) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := json.NewEncoder(w.f).Encode(ckptShard{Shard: shard, Result: wc}.stamped()); err != nil {
		return fmt.Errorf("adversary: checkpoint: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("adversary: checkpoint: %w", err)
	}
	return nil
}

func (w *checkpointWriter) close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.f.Close()
}

// SearchCheckpointed is Search with shard-granular checkpoint/resume:
// the label-pair space is split into a fixed number of contiguous
// shards (independent of the worker count), each completed shard's
// result is appended to cfg.Path as it finishes, and a rerun of the
// same search resumes from the completed shards. The merged output —
// values, witnesses, Runs, AllMet — is bit-for-bit identical to an
// uninterrupted Search for every worker count, every interruption
// point, and every tier/symmetry combination (a resumed shard may even
// be replayed by a different tier than the one that computed it, since
// all tiers are equivalent). A checkpoint file whose fingerprint,
// shard count or format does not match the current search is
// discarded, not misread.
//
// On cancellation the search returns the context's error and the
// checkpoint keeps every completed shard; the caller retries with the
// same arguments to resume. A search that cannot be fingerprinted
// (its explorer rejects the graph, so there is no content address to
// bind a checkpoint to) runs without persistence, exactly as Search
// would run it.
func SearchCheckpointed(spec Spec, space sim.SearchSpace, opts Options, cfg CheckpointConfig) (sim.WorstCase, error) {
	return SearchModelCheckpointed(paperModel(spec, space, opts), opts, cfg)
}

// SearchModelCheckpointed is SearchCheckpointed over any model: the
// model-generic checkpoint driver. It has SearchCheckpointed's entire
// contract — fixed shards, append-as-completed persistence, resume,
// bit-for-bit identity with SearchModel for every worker count and
// interruption point — with the checkpoint file bound to the model's
// own fingerprint (its own domain salt), so checkpoints of different
// models can never be misread for each other. Only the execution
// options (Workers, Context) are read from opts.
func SearchModelCheckpointed(m model.Model, opts Options, cfg CheckpointConfig) (sim.WorstCase, error) {
	plan, err := NewModelPlan(m, cfg.Shards)
	if err != nil {
		return sim.WorstCase{}, err
	}
	num := plan.Shards()
	obs := cfg.Observer
	if obs.PlanReady != nil {
		obs.PlanReady(plan.Info())
	}

	var done map[int]sim.WorstCase
	var writer *checkpointWriter
	if cfg.Path != "" {
		fp := cfg.Fingerprint
		if fp == "" {
			if fp, err = m.Fingerprint(); err != nil {
				// Unfingerprintable searches (an explorer that rejects the
				// graph) cannot be bound to a checkpoint file, but the
				// generic tier may still execute them (schedules that never
				// explore); run without persistence, exactly as SearchCached
				// runs them without the store.
				cfg.Path = ""
				fp = ""
			}
		}
		if cfg.Path != "" {
			done = loadCheckpoint(cfg.Path, fp, num)
			writer, err = newCheckpointWriter(cfg.Path, fp, num, done)
			if err != nil {
				return sim.WorstCase{}, err
			}
			defer writer.close()
		}
	}

	results := make([]sim.WorstCase, num)
	var todo []int
	for i := 0; i < num; i++ {
		if wc, ok := done[i]; ok {
			results[i] = wc
		} else {
			todo = append(todo, i)
		}
	}
	completed := num - len(todo)
	if obs.ShardsRestored != nil {
		obs.ShardsRestored(completed, num)
	}
	if cfg.Progress != nil {
		cfg.Progress(completed, num)
	}

	if len(todo) > 0 {
		parent := opts.Context
		if parent == nil {
			parent = context.Background()
		}
		ctx, cancel := context.WithCancel(parent)
		defer cancel()

		workers := sim.SearchOptions{Workers: opts.Workers}.ResolveWorkers(len(todo))
		var (
			mu   sync.Mutex
			next int
			errs = make(map[int]error)
			wg   sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					mu.Lock()
					if next >= len(todo) {
						mu.Unlock()
						return
					}
					i := todo[next]
					next++
					mu.Unlock()

					if obs.ShardStarted != nil {
						obs.ShardStarted(i, num)
					}
					wc, err := plan.RunShard(ctx, i)
					if obs.ShardFinished != nil {
						runs := wc.Runs
						if err != nil {
							runs = 0
						}
						obs.ShardFinished(i, num, runs, err)
					}
					if err == nil && writer != nil {
						if obs.CheckpointAppendStarted != nil {
							obs.CheckpointAppendStarted(i)
						}
						err = writer.record(i, wc)
						if obs.CheckpointAppendFinished != nil {
							obs.CheckpointAppendFinished(i, err)
						}
					}
					mu.Lock()
					if err != nil {
						errs[i] = err
						cancel() // stop sibling shards; theirs report ctx.Canceled
					} else {
						results[i] = wc
						completed++
						if cfg.Progress != nil {
							cfg.Progress(completed, num)
						}
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()

		if err := parent.Err(); err != nil {
			return sim.WorstCase{}, err
		}
		if len(errs) > 0 {
			// Deterministic error choice: the lowest-indexed shard that
			// failed for a real reason (sibling shards cancelled by our
			// internal cancel() only report context.Canceled).
			idxs := make([]int, 0, len(errs))
			for i := range errs {
				idxs = append(idxs, i)
			}
			sort.Ints(idxs)
			for _, i := range idxs {
				if !errors.Is(errs[i], context.Canceled) {
					return sim.WorstCase{}, errs[i]
				}
			}
			return sim.WorstCase{}, errs[idxs[0]]
		}
	}

	if obs.MergeStarted != nil {
		obs.MergeStarted(num)
	}
	merged := MergeShards(results)
	if obs.MergeFinished != nil {
		obs.MergeFinished()
	}
	return merged, nil
}
