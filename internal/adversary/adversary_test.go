package adversary

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"rendezvous/internal/core"
	"rendezvous/internal/explore"
	"rendezvous/internal/graph"
	"rendezvous/internal/sim"
)

// specFor binds an algorithm to a (graph, explorer) pair.
func specFor(g *graph.Graph, ex explore.Explorer, algo core.Algorithm, L int) Spec {
	params := core.Params{L: L}
	return Spec{
		Graph:       g,
		Explorer:    ex,
		ScheduleFor: func(l int) sim.Schedule { return algo.Schedule(l, params) },
	}
}

// TestParallelEquivalence is the engine's core guarantee: for every
// worker count, on every graph family, the search returns the identical
// WorstCase — same witnesses, same Runs, same AllMet — as the serial
// scan. Witness equality is what makes the parallel engine safe to
// substitute everywhere: it is not merely the same maxima, but the same
// configurations in the same canonical order.
func TestParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct {
		name  string
		g     *graph.Graph
		ex    explore.Explorer
		space sim.SearchSpace
	}{
		{"ring-sweep", graph.OrientedRing(12), explore.OrientedRingSweep{},
			sim.SearchSpace{L: 6, Delays: []int{0, 3, 11}}},
		{"ring-dfs", graph.OrientedRing(9), explore.DFS{},
			sim.SearchSpace{L: 5, Delays: []int{0, 1}}},
		{"grid", graph.Grid(3, 3), explore.DFS{},
			sim.SearchSpace{L: 5, Delays: []int{0, 4}}},
		{"tree", graph.RandomTree(8, rng), explore.DFS{},
			sim.SearchSpace{L: 5, Delays: []int{0, 7}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := specFor(tc.g, tc.ex, core.Cheap{}, tc.space.L)
			serial, err := Search(spec, tc.space, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !serial.AllMet || serial.Runs == 0 {
				t.Fatalf("serial baseline implausible: %+v", serial)
			}
			for _, workers := range []int{2, 3, 8, -1} {
				par, err := Search(spec, tc.space, Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if par != serial {
					t.Errorf("workers=%d: result diverged\nserial:   %+v\nparallel: %+v", workers, serial, par)
				}
			}
		})
	}
}

// TestFastPathMatchesGeneric checks the dispatch guarantee: on the
// canonical oriented ring with the sweep explorer, the segment-level
// fast path returns bit-for-bit the same WorstCase as the generic
// trajectory executor, for several algorithms and worker counts.
func TestFastPathMatchesGeneric(t *testing.T) {
	const n, L = 14, 6
	g := graph.OrientedRing(n)
	space := sim.SearchSpace{L: L, Delays: []int{0, 1, n - 1, 2 * (n - 1)}}
	for _, algo := range []core.Algorithm{core.Cheap{}, core.CheapSimultaneous{}, core.Fast{}, core.NewFastWithRelabeling(2)} {
		spec := specFor(g, explore.OrientedRingSweep{}, algo, L)
		if !spec.FastPathEligible() {
			t.Fatalf("%s: spec unexpectedly ineligible for the fast path", algo.Name())
		}
		generic, err := Search(spec, space, Options{NoFastPath: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 4} {
			fast, err := Search(spec, space, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if fast != generic {
				t.Errorf("%s workers=%d: fast path diverged\ngeneric: %+v\nfast:    %+v", algo.Name(), workers, generic, fast)
			}
		}
	}
}

// TestFastPathEligibility pins down exactly when dispatch fires.
func TestFastPathEligibility(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ring := graph.OrientedRing(10)
	if !(Spec{Graph: ring, Explorer: explore.OrientedRingSweep{}}).FastPathEligible() {
		t.Error("canonical ring + sweep should be eligible")
	}
	if (Spec{Graph: ring, Explorer: explore.DFS{}}).FastPathEligible() {
		t.Error("DFS explorer must not be eligible")
	}
	if (Spec{Graph: graph.Ring(10, rng), Explorer: explore.OrientedRingSweep{}}).FastPathEligible() {
		t.Error("port-shuffled ring must not be eligible")
	}
	if (Spec{Graph: graph.Grid(3, 3), Explorer: explore.OrientedRingSweep{}}).FastPathEligible() {
		t.Error("grid must not be eligible")
	}
}

// TestNegativeDelayFallsBack: the segment-level executor has no
// encoding for negative delays, so the engine must route them through
// the generic executor rather than erroring.
func TestNegativeDelayFallsBack(t *testing.T) {
	const n, L = 10, 4
	spec := specFor(graph.OrientedRing(n), explore.OrientedRingSweep{}, core.Cheap{}, L)
	space := sim.SearchSpace{L: L, Delays: []int{-1, 0}}
	got, err := Search(spec, space, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Search(spec, space, Options{NoFastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("negative-delay dispatch diverged: %+v vs %+v", got, want)
	}
}

// TestDegenerateStartPairsFallBack: start pairs the segment-level
// executor would reject (equal starts) must not make dispatch
// observable — the engine routes them through the generic executor,
// matching NoFastPath exactly.
func TestDegenerateStartPairsFallBack(t *testing.T) {
	const n, L = 10, 4
	spec := specFor(graph.OrientedRing(n), explore.OrientedRingSweep{}, core.Cheap{}, L)
	space := sim.SearchSpace{
		L:          L,
		StartPairs: [][2]int{{3, 3}, {0, 5}},
		Delays:     []int{0, 2},
	}
	want, err := Search(spec, space, Options{NoFastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		got, err := Search(spec, space, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d: equal-start dispatch diverged: %+v vs %+v", workers, got, want)
		}
	}
}

// TestCancellation: a cancelled context aborts the search with its
// error, on both the generic and the fast path, serial and parallel.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := specFor(graph.OrientedRing(12), explore.OrientedRingSweep{}, core.Cheap{}, 6)
	space := sim.SearchSpace{L: 6}
	for _, opts := range []Options{
		{Context: ctx},
		{Context: ctx, Workers: 4},
		{Context: ctx, NoFastPath: true},
		{Context: ctx, Workers: 4, NoFastPath: true},
	} {
		if _, err := Search(spec, space, opts); err != context.Canceled {
			t.Errorf("opts %+v: err = %v, want context.Canceled", opts, err)
		}
	}
}

// TestSearchSpaceErrors: the expansion errors (L too small) surface
// identically through every path.
func TestSearchSpaceErrors(t *testing.T) {
	spec := specFor(graph.OrientedRing(8), explore.OrientedRingSweep{}, core.Cheap{}, 4)
	for _, opts := range []Options{{}, {Workers: 4}, {NoFastPath: true}} {
		if _, err := Search(spec, sim.SearchSpace{L: 1}, opts); err == nil {
			t.Errorf("opts %+v: want error for L < 2", opts)
		}
	}
}

// TestParallelRace exercises the sharded engine with enough workers to
// interleave heavily; run with -race this is the concurrency test for
// the whole engine (per-worker caches, result slots, merge).
func TestParallelRace(t *testing.T) {
	spec := specFor(graph.OrientedRing(16), explore.OrientedRingSweep{}, core.Fast{}, 8)
	space := sim.SearchSpace{L: 8, Delays: []int{0, 1, 15}}
	want, err := Search(spec, space, Options{NoFastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			for j := 0; j < 3; j++ {
				got, err := Search(spec, space, Options{Workers: 6})
				if err == nil && got != want {
					err = fmt.Errorf("parallel result diverged: %+v vs %+v", got, want)
				}
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
