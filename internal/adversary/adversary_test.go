package adversary

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"rendezvous/internal/core"
	"rendezvous/internal/explore"
	"rendezvous/internal/graph"
	"rendezvous/internal/meetoracle"
	"rendezvous/internal/sim"
)

// specFor binds an algorithm to a (graph, explorer) pair.
func specFor(g *graph.Graph, ex explore.Explorer, algo core.Algorithm, L int) Spec {
	params := core.Params{L: L}
	return Spec{
		Graph:       g,
		Explorer:    ex,
		ScheduleFor: func(l int) sim.Schedule { return algo.Schedule(l, params) },
	}
}

// TestParallelEquivalence is the engine's core guarantee: for every
// worker count, on every graph family, the search returns the identical
// WorstCase — same witnesses, same Runs, same AllMet — as the serial
// scan. Witness equality is what makes the parallel engine safe to
// substitute everywhere: it is not merely the same maxima, but the same
// configurations in the same canonical order.
func TestParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct {
		name  string
		g     *graph.Graph
		ex    explore.Explorer
		space sim.SearchSpace
	}{
		{"ring-sweep", graph.OrientedRing(12), explore.OrientedRingSweep{},
			sim.SearchSpace{L: 6, Delays: []int{0, 3, 11}}},
		{"ring-dfs", graph.OrientedRing(9), explore.DFS{},
			sim.SearchSpace{L: 5, Delays: []int{0, 1}}},
		{"grid", graph.Grid(3, 3), explore.DFS{},
			sim.SearchSpace{L: 5, Delays: []int{0, 4}}},
		{"tree", graph.RandomTree(8, rng), explore.DFS{},
			sim.SearchSpace{L: 5, Delays: []int{0, 7}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := specFor(tc.g, tc.ex, core.Cheap{}, tc.space.L)
			serial, err := Search(spec, tc.space, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !serial.AllMet || serial.Runs == 0 {
				t.Fatalf("serial baseline implausible: %+v", serial)
			}
			for _, workers := range []int{2, 3, 8, -1} {
				par, err := Search(spec, tc.space, Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if par != serial {
					t.Errorf("workers=%d: result diverged\nserial:   %+v\nparallel: %+v", workers, serial, par)
				}
			}
		})
	}
}

// TestFastPathMatchesGeneric checks the dispatch guarantee: on the
// canonical oriented ring with the sweep explorer, the segment-level
// fast path returns bit-for-bit the same WorstCase as the generic
// trajectory executor, for several algorithms and worker counts.
func TestFastPathMatchesGeneric(t *testing.T) {
	const n, L = 14, 6
	g := graph.OrientedRing(n)
	space := sim.SearchSpace{L: L, Delays: []int{0, 1, n - 1, 2 * (n - 1)}}
	for _, algo := range []core.Algorithm{core.Cheap{}, core.CheapSimultaneous{}, core.Fast{}, core.NewFastWithRelabeling(2)} {
		spec := specFor(g, explore.OrientedRingSweep{}, algo, L)
		if !spec.FastPathEligible() {
			t.Fatalf("%s: spec unexpectedly ineligible for the fast path", algo.Name())
		}
		generic, err := Search(spec, space, Options{Tier: TierGeneric})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 4} {
			fast, err := Search(spec, space, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if fast != generic {
				t.Errorf("%s workers=%d: fast path diverged\ngeneric: %+v\nfast:    %+v", algo.Name(), workers, generic, fast)
			}
		}
	}
}

// TestFastPathEligibility pins down exactly when dispatch fires.
func TestFastPathEligibility(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ring := graph.OrientedRing(10)
	if !(Spec{Graph: ring, Explorer: explore.OrientedRingSweep{}}).FastPathEligible() {
		t.Error("canonical ring + sweep should be eligible")
	}
	if (Spec{Graph: ring, Explorer: explore.DFS{}}).FastPathEligible() {
		t.Error("DFS explorer must not be eligible")
	}
	if (Spec{Graph: graph.Ring(10, rng), Explorer: explore.OrientedRingSweep{}}).FastPathEligible() {
		t.Error("port-shuffled ring must not be eligible")
	}
	if (Spec{Graph: graph.Grid(3, 3), Explorer: explore.OrientedRingSweep{}}).FastPathEligible() {
		t.Error("grid must not be eligible")
	}
}

// TestNegativeDelayFallsBack: the segment-level executor has no
// encoding for negative delays, so the engine must route them through
// the generic executor rather than erroring.
func TestNegativeDelayFallsBack(t *testing.T) {
	const n, L = 10, 4
	spec := specFor(graph.OrientedRing(n), explore.OrientedRingSweep{}, core.Cheap{}, L)
	space := sim.SearchSpace{L: L, Delays: []int{-1, 0}}
	got, err := Search(spec, space, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Search(spec, space, Options{Tier: TierGeneric})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("negative-delay dispatch diverged: %+v vs %+v", got, want)
	}
}

// TestEqualStartPairsRejectedEverywhere: the model places agents at
// distinct nodes, so spaces listing equal start pairs must error out
// of Expand identically through every tier, worker count and symmetry
// mode — never reach an executor, never silently fall back.
func TestEqualStartPairsRejectedEverywhere(t *testing.T) {
	const n, L = 10, 4
	spec := specFor(graph.OrientedRing(n), explore.OrientedRingSweep{}, core.Cheap{}, L)
	space := sim.SearchSpace{
		L:          L,
		StartPairs: [][2]int{{3, 3}, {0, 5}},
		Delays:     []int{0, 2},
	}
	for _, opts := range []Options{
		{},
		{Workers: 4},
		{Tier: TierGeneric},
		{Tier: TierTable},
		{Tier: TierBatch},
		{Tier: TierRing},
		{Symmetry: SymmetryOff},
		{Symmetry: SymmetryForced},
	} {
		if _, err := Search(spec, space, opts); err == nil {
			t.Errorf("opts %+v: equal start pair accepted, want error", opts)
		}
	}
}

// TestCancellation: a cancelled context aborts the search with its
// error, on both the generic and the fast path, serial and parallel.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := specFor(graph.OrientedRing(12), explore.OrientedRingSweep{}, core.Cheap{}, 6)
	space := sim.SearchSpace{L: 6}
	for _, opts := range []Options{
		{Context: ctx},
		{Context: ctx, Workers: 4},
		{Context: ctx, Tier: TierGeneric},
		{Context: ctx, Workers: 4, Tier: TierGeneric},
	} {
		if _, err := Search(spec, space, opts); err != context.Canceled {
			t.Errorf("opts %+v: err = %v, want context.Canceled", opts, err)
		}
	}
}

// TestSearchSpaceErrors: the expansion errors (L too small) surface
// identically through every path.
func TestSearchSpaceErrors(t *testing.T) {
	spec := specFor(graph.OrientedRing(8), explore.OrientedRingSweep{}, core.Cheap{}, 4)
	for _, opts := range []Options{{}, {Workers: 4}, {Tier: TierGeneric}} {
		if _, err := Search(spec, sim.SearchSpace{L: 1}, opts); err == nil {
			t.Errorf("opts %+v: want error for L < 2", opts)
		}
	}
}

// TestParallelRace exercises the sharded engine with enough workers to
// interleave heavily; run with -race this is the concurrency test for
// the whole engine (per-worker caches, result slots, merge).
func TestParallelRace(t *testing.T) {
	spec := specFor(graph.OrientedRing(16), explore.OrientedRingSweep{}, core.Fast{}, 8)
	space := sim.SearchSpace{L: 8, Delays: []int{0, 1, 15}}
	want, err := Search(spec, space, Options{Tier: TierGeneric})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			for j := 0; j < 3; j++ {
				got, err := Search(spec, space, Options{Workers: 6})
				if err == nil && got != want {
					err = fmt.Errorf("parallel result diverged: %+v vs %+v", got, want)
				}
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestTableTierMatchesGeneric is the meeting-table analogue of
// TestFastPathMatchesGeneric: on non-ring graphs and explorers — where
// the ring tier cannot fire — the table tier must return bit-for-bit
// the same WorstCase as the generic trajectory executor, for several
// algorithms, graphs and worker counts, including delays beyond E.
func TestTableTierMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cases := []struct {
		name string
		g    *graph.Graph
		ex   explore.Explorer
	}{
		{"grid", graph.Grid(3, 3), explore.DFS{}},
		{"tree", graph.RandomTree(9, rng), explore.DFS{}},
		{"torus-eulerian", graph.Torus(3, 3), explore.Eulerian{}},
		{"hypercube-hamiltonian", graph.Hypercube(3), explore.Hamiltonian{}},
		{"ring-dfs", graph.OrientedRing(9), explore.DFS{}},
		{"shuffled-ring-sweepless", graph.Ring(8, rand.New(rand.NewSource(4))), explore.DFS{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := tc.ex.Duration(tc.g)
			space := sim.SearchSpace{L: 4, Delays: []int{0, 1, e, e + 1, 3 * e}}
			for _, algo := range []core.Algorithm{core.Cheap{}, core.Fast{}} {
				spec := specFor(tc.g, tc.ex, algo, 4)
				if spec.FastPathEligible() {
					t.Fatalf("%s: spec unexpectedly ring-eligible", algo.Name())
				}
				generic, err := Search(spec, space, Options{Tier: TierGeneric})
				if err != nil {
					t.Fatal(err)
				}
				if generic.Runs == 0 {
					t.Fatal("empty sweep")
				}
				for _, workers := range []int{0, 4} {
					for _, tier := range []Tier{TierTable, TierBatch, TierAuto} {
						got, err := Search(spec, space, Options{Workers: workers, Tier: tier})
						if err != nil {
							t.Fatalf("%s workers=%d tier=%v: %v", algo.Name(), workers, tier, err)
						}
						if got != generic {
							t.Errorf("%s workers=%d tier=%v diverged\ngeneric: %+v\ngot:     %+v",
								algo.Name(), workers, tier, generic, got)
						}
					}
				}
			}
		})
	}
}

// TestTableTierExplicitStarts: the meeting-table tier honours explicit
// (valid) start-pair subsets exactly as the trajectory scan does.
func TestTableTierExplicitStarts(t *testing.T) {
	spec := specFor(graph.Grid(3, 3), explore.DFS{}, core.Cheap{}, 4)
	space := sim.SearchSpace{
		L:          4,
		StartPairs: [][2]int{{2, 6}, {0, 5}},
		Delays:     []int{0, 3},
	}
	want, err := Search(spec, space, Options{Tier: TierGeneric})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Search(spec, space, Options{Tier: TierTable, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("explicit-start table tier diverged: %+v vs %+v", got, want)
	}
}

// TestForcedTierErrors: forcing an inapplicable tier is an error, not a
// silent substitution.
func TestForcedTierErrors(t *testing.T) {
	grid := specFor(graph.Grid(3, 3), explore.DFS{}, core.Cheap{}, 4)
	if _, err := Search(grid, sim.SearchSpace{L: 4}, Options{Tier: TierRing}); err == nil {
		t.Error("TierRing on a grid: want error")
	}
	badEx := specFor(graph.Grid(2, 3), explore.Eulerian{}, core.Cheap{}, 4)
	if _, err := Search(badEx, sim.SearchSpace{L: 4}, Options{Tier: TierTable}); err == nil {
		t.Error("TierTable with an explorer that rejects the graph: want error")
	}
	if _, err := Search(badEx, sim.SearchSpace{L: 4}, Options{Tier: TierBatch}); err == nil {
		t.Error("TierBatch with an explorer that rejects the graph: want error")
	}
	if _, err := Search(grid, sim.SearchSpace{L: 4}, Options{Tier: Tier(42)}); err == nil {
		t.Error("unknown tier: want error")
	}
}

// TestTableDegenerate pins down which spaces the table tier refuses.
func TestTableDegenerate(t *testing.T) {
	ok := [][2]int{{0, 1}, {2, 2}}
	if tableDegenerate(4, ok, []int{0, 7}) {
		t.Error("in-range starts (equal allowed) and non-negative delays are not degenerate")
	}
	if !tableDegenerate(4, ok, []int{0, -1}) {
		t.Error("negative delay must be degenerate")
	}
	if !tableDegenerate(4, [][2]int{{0, 4}}, []int{0}) {
		t.Error("out-of-range start must be degenerate")
	}
	if !tableDegenerate(4, [][2]int{{-1, 2}}, []int{0}) {
		t.Error("negative start must be degenerate")
	}
}

// TestAutoBudgetDecision: TierAuto must fall back to the generic
// executor when the budget disables or cannot fit the tables, and the
// budget arithmetic must use the exact phase count, which never
// exceeds E no matter how many delays the space sweeps.
func TestAutoBudgetDecision(t *testing.T) {
	g := graph.Grid(3, 3)
	e := explore.DFS{}.Duration(g)
	manyDelays := make([]int, 0, 10*e)
	for d := 0; d < 10*e; d++ {
		manyDelays = append(manyDelays, d)
	}
	if got := len(meetoracle.Phases(e, manyDelays)); got != e {
		t.Fatalf("distinct phases = %d, want E = %d", got, e)
	}
	// A budget sized for E slabs (plus walks and hit lists) must admit
	// the delay-rich sweep: the naive 2·len(delays) bound would demand
	// ~20x more and reject it.
	budget := meetoracle.EstimateBytes(g.N(), e, e)
	if naive := meetoracle.EstimateBytes(g.N(), e, 2*len(manyDelays)); naive <= budget {
		t.Fatalf("test premise broken: naive bound %d <= exact budget %d", naive, budget)
	}
	spec := specFor(g, explore.DFS{}, core.Cheap{}, 3)
	space := sim.SearchSpace{L: 3, StartPairs: [][2]int{{0, 4}, {8, 2}}, Delays: manyDelays[:2*e]}
	want, err := Search(spec, space, Options{Tier: TierGeneric})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{0, budget, -1, 16} {
		got, err := Search(spec, space, Options{TableBudget: budget})
		if err != nil {
			t.Fatalf("budget=%d: %v", budget, err)
		}
		if got != want {
			t.Errorf("budget=%d diverged: %+v vs %+v", budget, got, want)
		}
	}
}

// TestTinyBudgetStillCorrect: a budget too small for the tables routes
// TierAuto to the generic executor, with identical results.
func TestTinyBudgetStillCorrect(t *testing.T) {
	spec := specFor(graph.Grid(3, 3), explore.DFS{}, core.Fast{}, 4)
	space := sim.SearchSpace{L: 4, Delays: []int{0, 2}}
	want, err := Search(spec, space, Options{Tier: TierGeneric})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Search(spec, space, Options{TableBudget: 16, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("tiny-budget search diverged: %+v vs %+v", got, want)
	}
}

// TestTierStrings keeps the Tier diagnostics stable.
func TestTierStrings(t *testing.T) {
	for tier, want := range map[Tier]string{
		TierAuto: "auto", TierGeneric: "generic", TierTable: "table", TierRing: "ring",
		TierBatch: "batch", Tier(9): "tier(9)",
	} {
		if got := tier.String(); got != want {
			t.Errorf("Tier(%d).String() = %q, want %q", int(tier), got, want)
		}
	}
}
