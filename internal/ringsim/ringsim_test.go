package ringsim

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"rendezvous/internal/core"
	"rendezvous/internal/explore"
	"rendezvous/internal/graph"
	"rendezvous/internal/sim"
)

// reference runs the same scenario through the general simulator with
// the ring sweep, the ground truth ringsim must match bit for bit.
func reference(t *testing.T, n int, a, b Agent) sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Scenario{
		Graph:    graph.OrientedRing(n),
		Explorer: explore.OrientedRingSweep{},
		A:        sim.AgentSpec{Label: 1, Start: a.Start, Wake: a.Wake, Schedule: a.Schedule},
		B:        sim.AgentSpec{Label: 2, Start: b.Start, Wake: b.Wake, Schedule: b.Schedule},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunMatchesGeneralSimulatorExhaustive(t *testing.T) {
	// All Cheap and Fast label pairs, all offsets, several delays, two
	// ring sizes: every field must match the general simulator.
	for _, n := range []int{8, 13} {
		params := core.Params{L: 5}
		for _, algo := range []core.Algorithm{core.Cheap{}, core.Fast{}, core.CheapSimultaneous{}} {
			for la := 1; la <= 5; la++ {
				for lb := 1; lb <= 5; lb++ {
					if la == lb {
						continue
					}
					sa := algo.Schedule(la, params)
					sb := algo.Schedule(lb, params)
					for off := 1; off < n; off++ {
						for _, d := range []int{0, 1, n - 1, 2 * n} {
							a := Agent{Schedule: sa, Start: 0, Wake: 1}
							b := Agent{Schedule: sb, Start: off, Wake: 1 + d}
							got, err := Run(n, a, b)
							if err != nil {
								t.Fatal(err)
							}
							want := reference(t, n, a, b)
							if got.Met != want.Met || got.Round != want.Round ||
								got.CostA != want.CostA || got.CostB != want.CostB {
								t.Fatalf("n=%d %s labels(%d,%d) off=%d d=%d: ringsim %+v != sim %+v",
									n, algo.Name(), la, lb, off, d, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// Property: random schedules agree with the general simulator.
func TestRunMatchesGeneralSimulatorProperty(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 4
		randSched := func() sim.Schedule {
			s := make(sim.Schedule, rng.Intn(8)+1)
			for i := range s {
				if rng.Intn(2) == 0 {
					s[i] = sim.SegmentWait
				} else {
					s[i] = sim.SegmentExplore
				}
			}
			return s
		}
		a := Agent{Schedule: randSched(), Start: 0, Wake: 1}
		b := Agent{Schedule: randSched(), Start: rng.Intn(n-1) + 1, Wake: 1 + rng.Intn(3*n)}
		got, err := Run(n, a, b)
		if err != nil {
			return false
		}
		want, err := sim.Run(sim.Scenario{
			Graph:    graph.OrientedRing(n),
			Explorer: explore.OrientedRingSweep{},
			A:        sim.AgentSpec{Label: 1, Start: a.Start, Wake: a.Wake, Schedule: a.Schedule},
			B:        sim.AgentSpec{Label: 2, Start: b.Start, Wake: b.Wake, Schedule: b.Schedule},
		})
		if err != nil {
			return false
		}
		return got.Met == want.Met && got.Round == want.Round &&
			got.CostA == want.CostA && got.CostB == want.CostB
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestRunValidation(t *testing.T) {
	s := sim.Schedule{sim.SegmentExplore}
	if _, err := Run(8, Agent{Schedule: s, Start: 3, Wake: 1}, Agent{Schedule: s, Start: 3, Wake: 1}); err != ErrSameStart {
		t.Errorf("same start: err = %v", err)
	}
	if _, err := Run(8, Agent{Schedule: s, Start: 0, Wake: 2}, Agent{Schedule: s, Start: 3, Wake: 2}); err != ErrBadWake {
		t.Errorf("bad wake: err = %v", err)
	}
}

func TestNeverMeetingLockstep(t *testing.T) {
	// Two agents exploring in lockstep never meet; costs must equal the
	// full schedules.
	s := sim.Schedule{sim.SegmentExplore, sim.SegmentExplore}
	res, err := Run(10, Agent{Schedule: s, Start: 0, Wake: 1}, Agent{Schedule: s, Start: 5, Wake: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatal("lockstep agents met")
	}
	if res.CostA != 18 || res.CostB != 18 {
		t.Errorf("costs = (%d,%d), want (18,18)", res.CostA, res.CostB)
	}
}

func TestSearchMatchesSimSearch(t *testing.T) {
	const n, L = 12, 6
	params := core.Params{L: L}
	scheduleFor := func(l int) sim.Schedule { return core.Fast{}.Schedule(l, params) }

	var pairs [][2]int
	for a := 1; a <= L; a++ {
		for b := 1; b <= L; b++ {
			if a != b {
				pairs = append(pairs, [2]int{a, b})
			}
		}
	}
	delays := []int{0, 3, n - 1}

	fast, err := Search(n, scheduleFor, pairs, delays)
	if err != nil {
		t.Fatal(err)
	}

	tc := sim.NewTrajectories(graph.OrientedRing(n), explore.OrientedRingSweep{}, scheduleFor)
	var offsets [][2]int
	for d := 1; d < n; d++ {
		offsets = append(offsets, [2]int{0, d})
	}
	slow, err := sim.Search(tc, sim.SearchSpace{LabelPairs: pairs, StartPairs: offsets, Delays: delays})
	if err != nil {
		t.Fatal(err)
	}

	if fast.AllMet != slow.AllMet {
		t.Errorf("AllMet: ringsim %v, sim %v", fast.AllMet, slow.AllMet)
	}
	if fast.Time != slow.Time.Value {
		t.Errorf("worst time: ringsim %d, sim %d", fast.Time, slow.Time.Value)
	}
	if fast.Cost != slow.Cost.Value {
		t.Errorf("worst cost: ringsim %d, sim %d", fast.Cost, slow.Cost.Value)
	}
	if fast.Runs != slow.Runs {
		t.Errorf("runs: ringsim %d, sim %d", fast.Runs, slow.Runs)
	}
}

func TestSearchDefaultDelay(t *testing.T) {
	params := core.Params{L: 3}
	wc, err := Search(8, func(l int) sim.Schedule { return core.CheapSimultaneous{}.Schedule(l, params) },
		[][2]int{{1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wc.Runs != 7 {
		t.Errorf("Runs = %d, want 7 (offsets only)", wc.Runs)
	}
	if !wc.AllMet {
		t.Error("expected all met")
	}
}

func TestLargeLabelSpaceScales(t *testing.T) {
	// The point of ringsim: L = 4096 sweeps finish quickly.
	const n, L = 24, 4096
	params := core.Params{L: L}
	algo := core.NewFastWithRelabeling(3)
	pairs := [][2]int{{1, 2}, {L - 1, L}, {L / 2, L/2 + 1}, {17, 4001}}
	wc, err := Search(n, func(l int) sim.Schedule { return algo.Schedule(l, params) }, pairs, []int{0, 1, n - 1})
	if err != nil {
		t.Fatal(err)
	}
	if !wc.AllMet {
		t.Fatal("executions failed to meet")
	}
	e := n - 1
	if wc.Time > core.RelabelingTimeBound(e, L, 3) {
		t.Errorf("worst time %d exceeds (4t+5)E = %d", wc.Time, core.RelabelingTimeBound(e, L, 3))
	}
	if wc.Cost > core.RelabelingCostSafe(e, 3) {
		t.Errorf("worst cost %d exceeds (4w+2)E = %d", wc.Cost, core.RelabelingCostSafe(e, 3))
	}
}

// TestSearchWithWorkerEquivalence: the sharded sweep returns the
// identical WorstCase — including witnesses — for every worker count.
func TestSearchWithWorkerEquivalence(t *testing.T) {
	const n, L = 14, 8
	params := core.Params{L: L}
	scheduleFor := func(l int) sim.Schedule { return core.Fast{}.Schedule(l, params) }
	var pairs [][2]int
	for a := 1; a <= L; a++ {
		for b := 1; b <= L; b++ {
			if a != b {
				pairs = append(pairs, [2]int{a, b})
			}
		}
	}
	delays := []int{0, 1, n - 1}
	want, err := Search(n, scheduleFor, pairs, delays)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7, 100, -1} {
		got, err := SearchWith(n, scheduleFor, pairs, delays, sim.SearchOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d diverged:\nserial:   %+v\nparallel: %+v", workers, got, want)
		}
	}
}

// TestSearchWithCancellation: a cancelled context aborts the sweep.
func TestSearchWithCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	params := core.Params{L: 4}
	scheduleFor := func(l int) sim.Schedule { return core.Cheap{}.Schedule(l, params) }
	pairs := [][2]int{{1, 2}, {2, 1}, {3, 4}}
	for _, workers := range []int{1, 3} {
		_, err := SearchWith(10, scheduleFor, pairs, nil, sim.SearchOptions{Workers: workers, Context: ctx})
		if err != context.Canceled {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}
