// Package ringsim is an exact, segment-level executor for rendezvous
// schedules on the oriented ring with the optimal clockwise sweep as
// EXPLORE (the Section 3 setting: E = n-1).
//
// Package sim simulates round by round, costing O(schedule·E) per
// execution. On the oriented ring every schedule segment moves an agent
// at a constant rate (+1 node per round while exploring, 0 while
// waiting or asleep), so the gap between two agents changes linearly
// within any interval where both rates are constant, and the first
// crossing of zero can be computed in O(1) per interval. This executor
// therefore runs in O(|schedule A| + |schedule B|) per execution —
// independent of E — which makes exhaustive adversarial sweeps feasible
// at label-space sizes far beyond what the general simulator can touch
// (the experiment on the paper's open problem, E14, uses it at
// L = 4096).
//
// Results are bit-for-bit equal to sim.Run with
// explore.OrientedRingSweep; the test suite checks the equivalence
// exhaustively on randomized schedules.
package ringsim

import (
	"context"
	"errors"
	"fmt"

	"rendezvous/internal/sim"
)

// Agent is one agent in the segment-level model.
type Agent struct {
	// Schedule is the agent's sequence of E-round explore/wait segments.
	Schedule sim.Schedule
	// Start is the agent's starting node on the ring 0..n-1.
	Start int
	// Wake is the 1-based round in which the agent wakes.
	Wake int
}

// Result mirrors the relevant subset of sim.Result.
type Result struct {
	Met          bool
	Round        int // first meeting round; 0 if never
	CostA, CostB int // edge traversals until the meeting (or full schedules)
}

// Cost returns the combined cost.
func (r Result) Cost() int { return r.CostA + r.CostB }

// Time returns the paper's time measure (rounds from the earlier wake,
// which the executor requires to be round 1).
func (r Result) Time() int { return r.Round }

// Errors mirroring the general simulator's validations.
var (
	ErrSameStart = errors.New("ringsim: agents must start at distinct nodes")
	ErrBadWake   = errors.New("ringsim: earlier agent must wake in round 1")
)

// phase is a maximal interval of constant movement rate.
type phase struct {
	until int // inclusive last round of the phase
	rate  int // 0 or 1 (the sweep only moves clockwise)
}

// phases expands an agent into its rate timeline: asleep (rate 0) until
// Wake-1, then one phase per segment of E rounds each, then idle
// forever (represented implicitly).
func phases(a Agent, e int) []phase {
	ps := make([]phase, 0, len(a.Schedule)+1)
	t := a.Wake - 1
	if t > 0 {
		ps = append(ps, phase{until: t, rate: 0})
	}
	for _, seg := range a.Schedule {
		t += e
		rate := 0
		if seg == sim.SegmentExplore {
			rate = 1
		}
		// Merge with the previous phase when the rate is unchanged, to
		// keep the sweep loop short.
		if len(ps) > 0 && ps[len(ps)-1].rate == rate {
			ps[len(ps)-1].until = t
			continue
		}
		ps = append(ps, phase{until: t, rate: rate})
	}
	return ps
}

// Run computes the first meeting of the two agents on the oriented ring
// of size n (E = n-1), exactly as sim.Run would with the ring sweep.
func Run(n int, a, b Agent) (Result, error) {
	if ((a.Start-b.Start)%n+n)%n == 0 {
		return Result{}, ErrSameStart
	}
	if min(a.Wake, b.Wake) != 1 {
		return Result{}, ErrBadWake
	}
	e := n - 1
	pa := phases(a, e)
	pb := phases(b, e)

	// gap = (posB - posA) mod n at the end of each round; the agents
	// meet when it reaches 0. Rates rA, rB change only at phase
	// boundaries; sweep both timelines with two pointers.
	gap := ((b.Start-a.Start)%n + n) % n
	t := 0 // rounds processed so far
	ia, ib := 0, 0
	horizon := max(endOf(pa), endOf(pb))

	for t < horizon {
		rA, untilA := rateAt(pa, ia, t)
		rB, untilB := rateAt(pb, ib, t)
		segEnd := min(untilA, untilB, horizon)
		length := segEnd - t
		delta := rB - rA

		if delta != 0 {
			// gap moves by delta each round; find the first round where
			// it hits 0 mod n.
			var steps int
			if delta < 0 {
				steps = gap
			} else {
				steps = n - gap
			}
			if steps <= length {
				meet := t + steps
				return Result{
					Met:   true,
					Round: meet,
					CostA: costUntil(a, e, meet),
					CostB: costUntil(b, e, meet),
				}, nil
			}
		}
		gap = ((gap+delta*length)%n + n) % n
		t = segEnd
		for ia < len(pa) && pa[ia].until <= t {
			ia++
		}
		for ib < len(pb) && pb[ib].until <= t {
			ib++
		}
	}
	return Result{
		Met:   false,
		CostA: costUntil(a, e, horizon),
		CostB: costUntil(b, e, horizon),
	}, nil
}

// rateAt returns the rate in effect after round t and the last round it
// lasts until, given the phase index cursor.
func rateAt(ps []phase, i, t int) (rate, until int) {
	if i >= len(ps) {
		return 0, int(^uint(0) >> 1) // idle forever
	}
	return ps[i].rate, ps[i].until
}

// endOf returns the last scheduled round of a phase list.
func endOf(ps []phase) int {
	if len(ps) == 0 {
		return 0
	}
	return ps[len(ps)-1].until
}

// costUntil returns the agent's edge traversals in rounds 1..t: the
// overlap of [wake, t] with its exploration segments.
func costUntil(a Agent, e, t int) int {
	cost := 0
	segStart := a.Wake - 1 // rounds before the segment begins
	for _, seg := range a.Schedule {
		segEnd := segStart + e
		if seg == sim.SegmentExplore {
			hi := min(segEnd, t)
			if hi > segStart {
				cost += hi - segStart
			}
		}
		segStart = segEnd
		if segStart >= t {
			break
		}
	}
	return cost
}

// WorstCase aggregates an adversarial sweep.
type WorstCase struct {
	Time, Cost int
	// TimeWitness and CostWitness record (labelA, labelB, offset, delay).
	TimeWitness, CostWitness [4]int
	Runs                     int
	AllMet                   bool
}

// merge folds the next shard's results into wc; shards are folded in
// canonical pair order with a strictly-greater comparison, so the
// surviving witnesses match the serial sweep bit for bit.
func (wc *WorstCase) merge(next WorstCase) {
	if next.Time > wc.Time {
		wc.Time = next.Time
		wc.TimeWitness = next.TimeWitness
	}
	if next.Cost > wc.Cost {
		wc.Cost = next.Cost
		wc.CostWitness = next.CostWitness
	}
	wc.Runs += next.Runs
	wc.AllMet = wc.AllMet && next.AllMet
}

// searchShard sweeps one contiguous slice of label pairs serially, with
// its own private schedule cache. The context is checked once per pair.
func searchShard(ctx context.Context, n int, scheduleFor func(label int) sim.Schedule, pairs [][2]int, delays []int) (WorstCase, error) {
	scheds := make(map[int]sim.Schedule)
	get := func(l int) sim.Schedule {
		s, ok := scheds[l]
		if !ok {
			s = scheduleFor(l)
			scheds[l] = s
		}
		return s
	}
	wc := WorstCase{AllMet: true}
	for _, p := range pairs {
		if err := ctx.Err(); err != nil {
			return WorstCase{}, err
		}
		sa, sb := get(p[0]), get(p[1])
		for off := 1; off < n; off++ {
			for _, d := range delays {
				res, err := Run(n, Agent{Schedule: sa, Start: 0, Wake: 1}, Agent{Schedule: sb, Start: off, Wake: 1 + d})
				if err != nil {
					return WorstCase{}, fmt.Errorf("ringsim: labels %v offset %d delay %d: %w", p, off, d, err)
				}
				wc.Runs++
				if !res.Met {
					wc.AllMet = false
					continue
				}
				if res.Time() > wc.Time {
					wc.Time = res.Time()
					wc.TimeWitness = [4]int{p[0], p[1], off, d}
				}
				if res.Cost() > wc.Cost {
					wc.Cost = res.Cost()
					wc.CostWitness = [4]int{p[0], p[1], off, d}
				}
			}
		}
	}
	return wc, nil
}

// Search runs the adversary over label pairs × all non-zero offsets ×
// delays, with schedules supplied per label. It mirrors sim.Search but
// runs in O(segments) per execution. It is SearchWith with zero options
// (serial).
func Search(n int, scheduleFor func(label int) sim.Schedule, pairs [][2]int, delays []int) (WorstCase, error) {
	return SearchWith(n, scheduleFor, pairs, delays, sim.SearchOptions{})
}

// SearchWith is Search with execution options: opts.Workers shards the
// label pairs across goroutines (each with a private schedule cache) and
// opts.Context cancels between pairs. Output is bit-for-bit identical
// for every worker count. With Workers > 1, scheduleFor is called
// concurrently from every worker and must be a deterministic function
// safe for concurrent use.
func SearchWith(n int, scheduleFor func(label int) sim.Schedule, pairs [][2]int, delays []int, opts sim.SearchOptions) (WorstCase, error) {
	if len(delays) == 0 {
		delays = []int{0}
	}
	return sim.Sharded(opts, pairs, func(ctx context.Context, shard [][2]int) (WorstCase, error) {
		return searchShard(ctx, n, scheduleFor, shard, delays)
	}, (*WorstCase).merge)
}
