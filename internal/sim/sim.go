// Package sim implements the synchronous mobile-agent execution model of
// Miller & Pelc: two agents placed at distinct nodes of a port-labeled
// graph move in synchronous rounds, each woken by the adversary at its
// own round, and rendezvous occurs when both occupy the same node in the
// same round. Agents crossing the same edge in opposite directions do
// not notice each other.
//
// Because agents cannot communicate or leave marks before meeting, each
// agent's movement equals its solo trajectory up to the meeting round.
// The simulator therefore compiles each agent's schedule into a full
// solo trajectory and scans for the first coincidence, which is both
// faithful to the model and fast.
//
// The two efficiency measures of the paper are reported per execution:
//
//	time — rounds from the wake-up of the earlier agent until meeting;
//	cost — total edge traversals by both agents until meeting.
package sim

import (
	"errors"
	"fmt"

	"rendezvous/internal/explore"
	"rendezvous/internal/graph"
)

// Segment is one E-round phase of an agent's schedule. All algorithms in
// the paper are built from exactly two phase kinds: execute EXPLORE once
// (E rounds), or wait E rounds.
type Segment uint8

const (
	// SegmentWait keeps the agent idle at its current node for E rounds.
	SegmentWait Segment = iota + 1
	// SegmentExplore executes the EXPLORE procedure from the agent's
	// current node, taking exactly E rounds.
	SegmentExplore
)

// String implements fmt.Stringer.
func (s Segment) String() string {
	switch s {
	case SegmentWait:
		return "wait"
	case SegmentExplore:
		return "explore"
	default:
		return fmt.Sprintf("segment(%d)", uint8(s))
	}
}

// Schedule is the sequence of E-round segments an agent executes from
// its wake-up round. After the schedule is exhausted the agent remains
// idle at its final node.
type Schedule []Segment

// Explorations returns the number of SegmentExplore entries, an upper
// bound on the agent's cost in units of E.
func (s Schedule) Explorations() int {
	count := 0
	for _, seg := range s {
		if seg == SegmentExplore {
			count++
		}
	}
	return count
}

// Rounds returns the total duration of the schedule for a given E.
func (s Schedule) Rounds(e int) int { return len(s) * e }

// FromBits builds a schedule from a 0/1 sequence, mapping 1 to
// SegmentExplore and 0 to SegmentWait — the encoding Algorithm Fast uses
// for its transformed labels.
func FromBits(bits []byte) Schedule {
	sched := make(Schedule, len(bits))
	for i, b := range bits {
		if b != 0 {
			sched[i] = SegmentExplore
		} else {
			sched[i] = SegmentWait
		}
	}
	return sched
}

// Trajectory is the solo execution of a schedule: node positions and
// cumulative move counts per round since wake-up.
type Trajectory struct {
	// Pos[k] is the agent's node after k rounds since wake-up;
	// Pos[0] is the starting node.
	Pos []int
	// Moves[k] is the number of edge traversals performed during the
	// first k rounds; Moves[0] = 0.
	Moves []int
}

// Len returns the number of rounds covered by the trajectory.
func (t Trajectory) Len() int { return len(t.Pos) - 1 }

// At returns the agent's position after k rounds since wake-up; past the
// end of the schedule the agent stays at its final node.
func (t Trajectory) At(k int) int {
	if k < 0 {
		return t.Pos[0]
	}
	if k >= len(t.Pos) {
		return t.Pos[len(t.Pos)-1]
	}
	return t.Pos[k]
}

// MovesAt returns the cumulative number of edge traversals in the first
// k rounds since wake-up.
func (t Trajectory) MovesAt(k int) int {
	if k < 0 {
		return 0
	}
	if k >= len(t.Moves) {
		return t.Moves[len(t.Moves)-1]
	}
	return t.Moves[k]
}

// Concat appends next, which must begin at the node where t ends, and
// returns the combined trajectory. It is used by the unknown-E doubling
// wrapper to stitch iterations that use different explorers.
func (t Trajectory) Concat(next Trajectory) Trajectory {
	if t.Len() < 0 || len(t.Pos) == 0 {
		return next
	}
	if len(next.Pos) == 0 {
		return t
	}
	if next.Pos[0] != t.Pos[len(t.Pos)-1] {
		panic(fmt.Sprintf("sim: Concat: next trajectory starts at %d, want %d", next.Pos[0], t.Pos[len(t.Pos)-1]))
	}
	pos := make([]int, 0, len(t.Pos)+len(next.Pos)-1)
	moves := make([]int, 0, len(t.Moves)+len(next.Moves)-1)
	pos = append(pos, t.Pos...)
	moves = append(moves, t.Moves...)
	offset := t.Moves[len(t.Moves)-1]
	for i := 1; i < len(next.Pos); i++ {
		pos = append(pos, next.Pos[i])
		moves = append(moves, next.Moves[i]+offset)
	}
	return Trajectory{Pos: pos, Moves: moves}
}

// CompileTrajectory executes a schedule from the given start node,
// expanding each segment into E rounds: waits repeat the current node,
// explorations follow ex.Plan from the current node. The returned
// trajectory has exactly len(sched)·E rounds.
func CompileTrajectory(g *graph.Graph, ex explore.Explorer, start int, sched Schedule) (Trajectory, error) {
	if start < 0 || start >= g.N() {
		return Trajectory{}, fmt.Errorf("sim: start node %d out of range [0,%d)", start, g.N())
	}
	e := ex.Duration(g)
	pos := make([]int, 1, len(sched)*e+1)
	moves := make([]int, 1, len(sched)*e+1)
	pos[0] = start

	cur := start
	for i, seg := range sched {
		switch seg {
		case SegmentWait:
			for r := 0; r < e; r++ {
				pos = append(pos, cur)
				moves = append(moves, moves[len(moves)-1])
			}
		case SegmentExplore:
			plan, err := ex.Plan(g, cur)
			if err != nil {
				return Trajectory{}, fmt.Errorf("sim: segment %d: %w", i, err)
			}
			if len(plan) != e {
				return Trajectory{}, fmt.Errorf("sim: segment %d: plan has %d steps, want E = %d", i, len(plan), e)
			}
			for _, step := range plan {
				if step == explore.Wait {
					pos = append(pos, cur)
					moves = append(moves, moves[len(moves)-1])
					continue
				}
				if step < 0 || step >= g.Degree(cur) {
					return Trajectory{}, fmt.Errorf("sim: segment %d: port %d unavailable at node of degree %d", i, step, g.Degree(cur))
				}
				cur, _ = g.Neighbor(cur, step)
				pos = append(pos, cur)
				moves = append(moves, moves[len(moves)-1]+1)
			}
		default:
			return Trajectory{}, fmt.Errorf("sim: segment %d: unknown segment kind %d", i, seg)
		}
	}
	return Trajectory{Pos: pos, Moves: moves}, nil
}

// AgentSpec describes one agent in a scenario.
type AgentSpec struct {
	// Label is the agent's distinct label from {1..L}. It is carried for
	// reporting; the schedule already encodes its effect.
	Label int
	// Start is the agent's starting node.
	Start int
	// Wake is the 1-based absolute round in which the adversary wakes the
	// agent; the earlier agent must have Wake = 1.
	Wake int
	// Schedule is the agent's compiled algorithm.
	Schedule Schedule
}

// Scenario is a complete two-agent execution setup.
type Scenario struct {
	Graph    *graph.Graph
	Explorer explore.Explorer
	A, B     AgentSpec
	// Parachuted selects the alternative model of the paper's Conclusion:
	// an agent is absent from the graph before its wake-up round and
	// cannot be met there. In the default model agents rest at their
	// starting nodes from round 0 and a sleeping agent can be found.
	Parachuted bool
}

// Result reports the outcome of an execution.
type Result struct {
	// Met reports whether the agents met before both schedules ended.
	Met bool
	// Round is the first absolute round at whose end both agents occupy
	// the same node (0 if they never meet). Since the earlier agent wakes
	// in round 1, Round equals the paper's time measure.
	Round int
	// Node is the meeting node (-1 if they never meet).
	Node int
	// CostA and CostB are the edge traversals by each agent until the
	// meeting (or until their schedules end, if they never meet).
	CostA, CostB int
	// TimeFromLaterWake counts rounds from the later agent's wake-up to
	// the meeting — the accounting used by [26, 45] and discussed in the
	// paper's Conclusion. Zero when the meeting precedes the later
	// agent's wake-up (the earlier agent found it asleep).
	TimeFromLaterWake int
	// CostFromLaterWake counts both agents' edge traversals from the
	// later agent's wake-up to the meeting, the Conclusion's alternative
	// cost measure.
	CostFromLaterWake int
}

// Time returns the paper's time measure: rounds from the start of the
// earlier agent until meeting.
func (r Result) Time() int { return r.Round }

// Cost returns the paper's cost measure: total edge traversals by both
// agents before rendezvous.
func (r Result) Cost() int { return r.CostA + r.CostB }

// Validation errors returned by Run.
var (
	ErrSameStart     = errors.New("sim: agents must start at distinct nodes")
	ErrSameLabel     = errors.New("sim: agents must have distinct labels")
	ErrBadWake       = errors.New("sim: earlier agent must wake in round 1")
	ErrStartOutRange = errors.New("sim: start node out of range")
)

// Run executes the scenario to completion: it simulates rounds until the
// agents meet or both schedules are exhausted (after which neither agent
// will ever move, so failing to meet by then means never meeting).
func Run(sc Scenario) (Result, error) {
	n := sc.Graph.N()
	if sc.A.Start == sc.B.Start {
		return Result{}, ErrSameStart
	}
	if sc.A.Label == sc.B.Label {
		return Result{}, ErrSameLabel
	}
	if sc.A.Start < 0 || sc.A.Start >= n || sc.B.Start < 0 || sc.B.Start >= n {
		return Result{}, ErrStartOutRange
	}
	if min(sc.A.Wake, sc.B.Wake) != 1 {
		return Result{}, ErrBadWake
	}

	trajA, err := CompileTrajectory(sc.Graph, sc.Explorer, sc.A.Start, sc.A.Schedule)
	if err != nil {
		return Result{}, fmt.Errorf("sim: agent A: %w", err)
	}
	trajB, err := CompileTrajectory(sc.Graph, sc.Explorer, sc.B.Start, sc.B.Schedule)
	if err != nil {
		return Result{}, fmt.Errorf("sim: agent B: %w", err)
	}

	return Meet(trajA, trajB, sc.A.Wake, sc.B.Wake, sc.Parachuted), nil
}
