package sim

import (
	"bytes"
	"strings"
	"testing"

	"rendezvous/internal/explore"
	"rendezvous/internal/graph"
)

func TestTraceShortExecution(t *testing.T) {
	g := graph.OrientedRing(8)
	sc := Scenario{
		Graph:    g,
		Explorer: explore.OrientedRingSweep{},
		A:        AgentSpec{Label: 1, Start: 0, Wake: 1, Schedule: Schedule{SegmentExplore}},
		B:        AgentSpec{Label: 2, Start: 5, Wake: 1, Schedule: Schedule{SegmentWait}},
	}
	var buf bytes.Buffer
	if err := Trace(&buf, sc, 100); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"round", "** RENDEZVOUS **", "met at node 5 in round 5", "idle", "0→1"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	// No elision for a short execution.
	if strings.Contains(out, "...") {
		t.Error("short trace should not elide rounds")
	}
}

func TestTraceElidesLongExecution(t *testing.T) {
	g := graph.OrientedRing(10)
	// Label-5-style schedule: long waits before the action.
	sched := Schedule{SegmentWait, SegmentWait, SegmentWait, SegmentWait, SegmentWait, SegmentWait, SegmentExplore}
	sc := Scenario{
		Graph:    g,
		Explorer: explore.OrientedRingSweep{},
		A:        AgentSpec{Label: 1, Start: 0, Wake: 1, Schedule: sched},
		B:        AgentSpec{Label: 2, Start: 7, Wake: 9, Schedule: Schedule{SegmentWait}},
	}
	var buf bytes.Buffer
	if err := Trace(&buf, sc, 12); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "...") {
		t.Errorf("long trace must elide rounds:\n%s", out)
	}
	if !strings.Contains(out, "** RENDEZVOUS **") {
		t.Errorf("meeting row must survive elision:\n%s", out)
	}
	if !strings.Contains(out, "asleep") {
		t.Errorf("sleeping agent must be rendered:\n%s", out)
	}
}

func TestTraceNoMeeting(t *testing.T) {
	g := graph.OrientedRing(6)
	sc := Scenario{
		Graph:    g,
		Explorer: explore.OrientedRingSweep{},
		A:        AgentSpec{Label: 1, Start: 0, Wake: 1, Schedule: Schedule{SegmentExplore}},
		B:        AgentSpec{Label: 2, Start: 3, Wake: 1, Schedule: Schedule{SegmentExplore}},
	}
	var buf bytes.Buffer
	if err := Trace(&buf, sc, 50); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no meeting") {
		t.Errorf("non-meeting trace must say so:\n%s", buf.String())
	}
}

func TestTraceParachutedAbsent(t *testing.T) {
	g := graph.OrientedRing(6)
	sc := Scenario{
		Graph:      g,
		Explorer:   explore.OrientedRingSweep{},
		A:          AgentSpec{Label: 1, Start: 0, Wake: 1, Schedule: Schedule{SegmentExplore}},
		B:          AgentSpec{Label: 2, Start: 3, Wake: 4, Schedule: Schedule{SegmentWait}},
		Parachuted: true,
	}
	var buf bytes.Buffer
	if err := Trace(&buf, sc, 100); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(absent)") {
		t.Errorf("parachuted agent must render as absent before wake:\n%s", buf.String())
	}
}

func TestTraceBadScenario(t *testing.T) {
	g := graph.Path(4)
	sc := Scenario{
		Graph:    g,
		Explorer: explore.OrientedRingSweep{}, // invalid for a path
		A:        AgentSpec{Label: 1, Start: 0, Wake: 1, Schedule: Schedule{SegmentExplore}},
		B:        AgentSpec{Label: 2, Start: 3, Wake: 1, Schedule: Schedule{SegmentWait}},
	}
	var buf bytes.Buffer
	if err := Trace(&buf, sc, 10); err == nil {
		t.Error("invalid explorer: want error")
	}
}
