package sim

import (
	"runtime"
	"testing"

	"rendezvous/internal/explore"
	"rendezvous/internal/graph"
)

// TestSearchSpaceExpandErrors is the table-driven error-path coverage
// for SearchSpace.Expand: invalid label spaces, graphs too small to
// form the default start-pair enumeration, and explicit pairs that
// violate the model (equal labels, labels below 1, equal starts) must
// fail up front, instead of silently producing a sweep the model does
// not define (the defaults were always validated; explicit pairs now
// are too).
func TestSearchSpaceExpandErrors(t *testing.T) {
	cases := []struct {
		name    string
		space   SearchSpace
		n       int
		wantErr bool
	}{
		{"default ok", SearchSpace{L: 2}, 4, false},
		{"L zero", SearchSpace{}, 4, true},
		{"L one", SearchSpace{L: 1}, 4, true},
		{"L negative", SearchSpace{L: -3}, 4, true},
		{"explicit label pairs bypass L", SearchSpace{LabelPairs: [][2]int{{1, 2}}}, 4, false},
		{"equal labels rejected", SearchSpace{LabelPairs: [][2]int{{1, 2}, {2, 2}}}, 4, true},
		{"zero label rejected", SearchSpace{LabelPairs: [][2]int{{0, 2}}}, 4, true},
		{"negative label rejected", SearchSpace{LabelPairs: [][2]int{{3, -1}}}, 4, true},
		{"single-node graph, default starts", SearchSpace{L: 2}, 1, true},
		{"zero-node graph, default starts", SearchSpace{L: 2}, 0, true},
		{"equal starts rejected", SearchSpace{L: 2, StartPairs: [][2]int{{0, 0}}}, 1, true},
		{"equal starts rejected among valid", SearchSpace{L: 2, StartPairs: [][2]int{{0, 1}, {3, 3}}}, 4, true},
		{"explicit distinct starts ok", SearchSpace{L: 2, StartPairs: [][2]int{{0, 1}}}, 4, false},
		{"out-of-range starts left to executors", SearchSpace{L: 2, StartPairs: [][2]int{{0, 9}}}, 4, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			labelPairs, startPairs, delays, err := tc.space.Expand(tc.n)
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(labelPairs) == 0 {
				t.Error("no label pairs")
			}
			if len(startPairs) == 0 {
				t.Error("no start pairs")
			}
			if len(delays) == 0 {
				t.Error("no delays")
			}
		})
	}
}

// TestSearchSpaceExpandDefaults pins the documented default
// enumeration: all ordered distinct pairs, in canonical order, and the
// {0} delay set.
func TestSearchSpaceExpandDefaults(t *testing.T) {
	labelPairs, startPairs, delays, err := SearchSpace{L: 3}.Expand(3)
	if err != nil {
		t.Fatal(err)
	}
	wantLabels := [][2]int{{1, 2}, {1, 3}, {2, 1}, {2, 3}, {3, 1}, {3, 2}}
	wantStarts := [][2]int{{0, 1}, {0, 2}, {1, 0}, {1, 2}, {2, 0}, {2, 1}}
	if len(labelPairs) != len(wantLabels) {
		t.Fatalf("labelPairs = %v", labelPairs)
	}
	for i := range wantLabels {
		if labelPairs[i] != wantLabels[i] {
			t.Fatalf("labelPairs[%d] = %v, want %v", i, labelPairs[i], wantLabels[i])
		}
	}
	for i := range wantStarts {
		if startPairs[i] != wantStarts[i] {
			t.Fatalf("startPairs[%d] = %v, want %v", i, startPairs[i], wantStarts[i])
		}
	}
	if len(delays) != 1 || delays[0] != 0 {
		t.Fatalf("delays = %v, want [0]", delays)
	}
}

// TestObserveUntilMeetingWitnesses pins the witness-update rule to the
// paper's until-meeting measures: an execution that never meets counts
// in Runs and flips AllMet but must update NEITHER witness — its
// accumulated schedule cost is an artifact of the simulation horizon,
// not a cost "until meeting". (Historically the Cost witness leaked
// such phantom costs while the Time witness correctly required Met;
// the segment-level ring engine always skipped both, so this also
// pins sim to ringsim's semantics.)
func TestObserveUntilMeetingWitnesses(t *testing.T) {
	wc := WorstCase{AllMet: true}
	wc.Observe(1, 2, 0, 3, 0, Result{Met: false, CostA: 500, CostB: 500})
	if wc.Cost.Value != 0 || wc.Time.Value != 0 {
		t.Fatalf("non-meeting execution leaked into a witness: %+v", wc)
	}
	if wc.AllMet || wc.Runs != 1 {
		t.Fatalf("non-meeting execution miscounted: %+v", wc)
	}
	wc.Observe(2, 1, 3, 0, 1, Result{Met: true, Round: 7, CostA: 2, CostB: 3})
	if wc.Time.Value != 7 || wc.Cost.Value != 5 {
		t.Fatalf("meeting execution not recorded: %+v", wc)
	}
	if want := (Witness{LabelA: 2, LabelB: 1, StartA: 3, StartB: 0, DelayB: 1, Value: 5}); wc.Cost != want {
		t.Fatalf("cost witness = %+v, want %+v", wc.Cost, want)
	}
	if wc.AllMet {
		t.Fatal("AllMet must stay false once any execution failed to meet")
	}
}

// TestSearchNonMeetingLeavesWitnessesEmpty is the integration form:
// lockstep same-direction sweeps on the oriented ring never meet, so
// the search must report the violation through AllMet while leaving
// both witnesses at their zero values instead of reporting the
// horizon-dependent schedule costs as a "worst case".
func TestSearchNonMeetingLeavesWitnessesEmpty(t *testing.T) {
	g := graph.OrientedRing(6)
	tc := NewTrajectories(g, explore.OrientedRingSweep{}, func(int) Schedule { return Schedule{SegmentExplore} })
	wc, err := Search(tc, SearchSpace{L: 2})
	if err != nil {
		t.Fatal(err)
	}
	if wc.AllMet {
		t.Fatal("lockstep sweeps reported as meeting")
	}
	if wc.Runs == 0 {
		t.Fatal("empty sweep")
	}
	if wc.Time != (Witness{}) || wc.Cost != (Witness{}) {
		t.Errorf("witnesses must stay empty when nothing meets: %+v", wc)
	}
}

// TestResolveWorkers is the table-driven coverage for the worker-count
// resolution rules: 0 and 1 are serial, negatives select GOMAXPROCS,
// and the result is always clamped to [1, units].
func TestResolveWorkers(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		name    string
		workers int
		units   int
		want    int
	}{
		{"zero is serial", 0, 100, 1},
		{"one is serial", 1, 100, 1},
		{"explicit count", 7, 100, 7},
		{"clamped to units", 8, 3, 3},
		{"negative selects GOMAXPROCS", -1, 1 << 30, maxprocs},
		{"negative clamped to units", -1, 1, 1},
		{"zero units never yields zero workers", 4, 0, 1},
		{"negative units never yields zero workers", 4, -2, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := (SearchOptions{Workers: tc.workers}).ResolveWorkers(tc.units); got != tc.want {
				t.Errorf("ResolveWorkers(%d) with Workers=%d = %d, want %d", tc.units, tc.workers, got, tc.want)
			}
		})
	}
}
