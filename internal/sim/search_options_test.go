package sim

import (
	"runtime"
	"testing"
)

// TestSearchSpaceExpandErrors is the table-driven error-path coverage
// for SearchSpace.Expand: invalid label spaces and graphs too small to
// form the default start-pair enumeration must fail up front, instead
// of silently producing an empty sweep that reports AllMet = true over
// zero runs.
func TestSearchSpaceExpandErrors(t *testing.T) {
	cases := []struct {
		name    string
		space   SearchSpace
		n       int
		wantErr bool
	}{
		{"default ok", SearchSpace{L: 2}, 4, false},
		{"L zero", SearchSpace{}, 4, true},
		{"L one", SearchSpace{L: 1}, 4, true},
		{"L negative", SearchSpace{L: -3}, 4, true},
		{"explicit label pairs bypass L", SearchSpace{LabelPairs: [][2]int{{1, 2}}}, 4, false},
		{"single-node graph, default starts", SearchSpace{L: 2}, 1, true},
		{"zero-node graph, default starts", SearchSpace{L: 2}, 0, true},
		{"single-node graph, explicit starts", SearchSpace{L: 2, StartPairs: [][2]int{{0, 0}}}, 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			labelPairs, startPairs, delays, err := tc.space.Expand(tc.n)
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(labelPairs) == 0 {
				t.Error("no label pairs")
			}
			if len(startPairs) == 0 {
				t.Error("no start pairs")
			}
			if len(delays) == 0 {
				t.Error("no delays")
			}
		})
	}
}

// TestSearchSpaceExpandDefaults pins the documented default
// enumeration: all ordered distinct pairs, in canonical order, and the
// {0} delay set.
func TestSearchSpaceExpandDefaults(t *testing.T) {
	labelPairs, startPairs, delays, err := SearchSpace{L: 3}.Expand(3)
	if err != nil {
		t.Fatal(err)
	}
	wantLabels := [][2]int{{1, 2}, {1, 3}, {2, 1}, {2, 3}, {3, 1}, {3, 2}}
	wantStarts := [][2]int{{0, 1}, {0, 2}, {1, 0}, {1, 2}, {2, 0}, {2, 1}}
	if len(labelPairs) != len(wantLabels) {
		t.Fatalf("labelPairs = %v", labelPairs)
	}
	for i := range wantLabels {
		if labelPairs[i] != wantLabels[i] {
			t.Fatalf("labelPairs[%d] = %v, want %v", i, labelPairs[i], wantLabels[i])
		}
	}
	for i := range wantStarts {
		if startPairs[i] != wantStarts[i] {
			t.Fatalf("startPairs[%d] = %v, want %v", i, startPairs[i], wantStarts[i])
		}
	}
	if len(delays) != 1 || delays[0] != 0 {
		t.Fatalf("delays = %v, want [0]", delays)
	}
}

// TestResolveWorkers is the table-driven coverage for the worker-count
// resolution rules: 0 and 1 are serial, negatives select GOMAXPROCS,
// and the result is always clamped to [1, units].
func TestResolveWorkers(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		name    string
		workers int
		units   int
		want    int
	}{
		{"zero is serial", 0, 100, 1},
		{"one is serial", 1, 100, 1},
		{"explicit count", 7, 100, 7},
		{"clamped to units", 8, 3, 3},
		{"negative selects GOMAXPROCS", -1, 1 << 30, maxprocs},
		{"negative clamped to units", -1, 1, 1},
		{"zero units never yields zero workers", 4, 0, 1},
		{"negative units never yields zero workers", 4, -2, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := (SearchOptions{Workers: tc.workers}).ResolveWorkers(tc.units); got != tc.want {
				t.Errorf("ResolveWorkers(%d) with Workers=%d = %d, want %d", tc.units, tc.workers, got, tc.want)
			}
		})
	}
}
