package sim

import (
	"fmt"
	"io"
)

// Trace renders a two-agent execution round by round: each agent's
// position, whether it moved, and the meeting. Long executions are
// elided in the middle but always show the first rounds, the rounds
// around each agent's wake-up, and the window before the meeting (or
// the end). It is a debugging and teaching aid used by cmd/rdvsim
// -trace.
func Trace(w io.Writer, sc Scenario, maxRows int) error {
	trajA, err := CompileTrajectory(sc.Graph, sc.Explorer, sc.A.Start, sc.A.Schedule)
	if err != nil {
		return fmt.Errorf("sim: trace: agent A: %w", err)
	}
	trajB, err := CompileTrajectory(sc.Graph, sc.Explorer, sc.B.Start, sc.B.Schedule)
	if err != nil {
		return fmt.Errorf("sim: trace: agent B: %w", err)
	}
	res := Meet(trajA, trajB, sc.A.Wake, sc.B.Wake, sc.Parachuted)

	horizon := max(sc.A.Wake+trajA.Len(), sc.B.Wake+trajB.Len())
	if res.Met {
		horizon = res.Round
	}

	interesting := markInteresting(horizon, maxRows, res.Round, sc.A.Wake, sc.B.Wake)

	if _, err := fmt.Fprintf(w, "%7s  %-16s %-16s\n", "round", "agent A", "agent B"); err != nil {
		return err
	}
	elided := false
	for t := 1; t <= horizon; t++ {
		if !interesting[t] {
			if !elided {
				if _, err := fmt.Fprintf(w, "%7s\n", "..."); err != nil {
					return err
				}
				elided = true
			}
			continue
		}
		elided = false
		line := fmt.Sprintf("%7d  %-16s %-16s", t,
			describe(trajA, sc.A.Wake, t, sc.Parachuted),
			describe(trajB, sc.B.Wake, t, sc.Parachuted))
		if res.Met && t == res.Round {
			line += "  ** RENDEZVOUS **"
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	if res.Met {
		_, err = fmt.Fprintf(w, "met at node %d in round %d; time %d, cost %d (A %d, B %d)\n",
			res.Node, res.Round, res.Time(), res.Cost(), res.CostA, res.CostB)
	} else {
		_, err = fmt.Fprintf(w, "no meeting; schedules exhausted at round %d\n", horizon)
	}
	return err
}

// markInteresting selects the rounds to print: a prefix, a window
// around each wake-up, and a suffix ending at the final round.
func markInteresting(horizon, maxRows, meeting, wakeA, wakeB int) []bool {
	marks := make([]bool, horizon+1)
	if horizon <= maxRows {
		for t := 1; t <= horizon; t++ {
			marks[t] = true
		}
		return marks
	}
	window := maxRows / 4
	if window < 2 {
		window = 2
	}
	mark := func(from, to int) {
		for t := max(1, from); t <= min(horizon, to); t++ {
			marks[t] = true
		}
	}
	mark(1, window)
	mark(wakeA-1, wakeA+1)
	mark(wakeB-1, wakeB+1)
	mark(horizon-window+1, horizon)
	if meeting > 0 {
		mark(meeting-2, meeting)
	}
	return marks
}

// describe renders one agent's state at the end of round t.
func describe(traj Trajectory, wake, t int, parachuted bool) string {
	k := t - wake + 1
	if k < 1 {
		if parachuted {
			return "(absent)"
		}
		return fmt.Sprintf("@%-4d asleep", traj.Pos[0])
	}
	if k > traj.Len() {
		return fmt.Sprintf("@%-4d done", traj.At(k))
	}
	if traj.MovesAt(k) > traj.MovesAt(k-1) {
		return fmt.Sprintf("%d→%-4d", traj.At(k-1), traj.At(k))
	}
	return fmt.Sprintf("@%-4d idle", traj.At(k))
}
