package sim

import (
	"context"
	"testing"

	"rendezvous/internal/explore"
	"rendezvous/internal/graph"
)

// cheapLikeSchedule is a small standalone schedule family for tests
// (explore, wait ℓ times, explore), avoiding a dependency on core.
func cheapLikeSchedule(label int) Schedule {
	sched := Schedule{SegmentExplore}
	for i := 0; i < label; i++ {
		sched = append(sched, SegmentWait)
	}
	return append(sched, SegmentExplore)
}

// TestSearchWithWorkerEquivalence: SearchWith returns the identical
// WorstCase for every worker count, on a non-ring graph where the
// generic trajectory executor is the only path.
func TestSearchWithWorkerEquivalence(t *testing.T) {
	g := graph.Grid(3, 4)
	space := SearchSpace{L: 6, Delays: []int{0, 5, 22}}
	tc := NewTrajectories(g, explore.DFS{}, cheapLikeSchedule)
	want, err := Search(tc, space)
	if err != nil {
		t.Fatal(err)
	}
	if want.Runs == 0 {
		t.Fatal("empty search")
	}
	for _, workers := range []int{2, 5, 30, -1} {
		got, err := SearchWith(tc.Clone(), space, SearchOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d diverged:\nserial:   %+v\nparallel: %+v", workers, got, want)
		}
	}
}

// TestSearchWithSharedCache: the parallel path must not mutate the
// caller's cache concurrently — it clones per worker — so a cache
// already warmed by a serial run stays usable.
func TestSearchWithSharedCache(t *testing.T) {
	g := graph.OrientedRing(8)
	tc := NewTrajectories(g, explore.OrientedRingSweep{}, cheapLikeSchedule)
	space := SearchSpace{L: 4}
	first, err := SearchWith(tc, space, SearchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	second, err := SearchWith(tc, space, SearchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("warmed-cache rerun diverged: %+v vs %+v", first, second)
	}
}

// TestSearchCancellation: context cancellation surfaces from both the
// serial and the sharded path.
func TestSearchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tc := NewTrajectories(graph.OrientedRing(8), explore.OrientedRingSweep{}, cheapLikeSchedule)
	for _, workers := range []int{1, 4} {
		_, err := SearchWith(tc.Clone(), SearchSpace{L: 4}, SearchOptions{Workers: workers, Context: ctx})
		if err != context.Canceled {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestExpandDefaults checks the canonical enumeration the engine and
// its documentation promise.
func TestExpandDefaults(t *testing.T) {
	lp, sp, d, err := SearchSpace{L: 3}.Expand(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(lp) != 6 || len(sp) != 6 || len(d) != 1 || d[0] != 0 {
		t.Errorf("Expand: %v %v %v", lp, sp, d)
	}
	if lp[0] != [2]int{1, 2} || sp[0] != [2]int{0, 1} {
		t.Errorf("Expand order changed: %v %v", lp[0], sp[0])
	}
	if _, _, _, err := (SearchSpace{L: 1}).Expand(3); err == nil {
		t.Error("want error for L < 2")
	}
}

// The clamping rules of ResolveWorkers are pinned by the table-driven
// TestResolveWorkers in search_options_test.go.
