package sim

import (
	"fmt"

	"rendezvous/internal/explore"
	"rendezvous/internal/graph"
)

// Witness records the configuration achieving an extreme value in an
// adversary search.
type Witness struct {
	LabelA, LabelB int
	StartA, StartB int
	DelayB         int // agent B's wake round minus 1
	Value          int
}

// WorstCase aggregates the adversary's best achievements over a searched
// configuration space: the maximum rendezvous time and cost, with the
// configurations that realise them.
type WorstCase struct {
	Time Witness
	Cost Witness
	// Runs is the number of executions examined.
	Runs int
	// AllMet reports whether every execution achieved rendezvous; a
	// correct algorithm must make this true.
	AllMet bool
}

// SearchSpace describes the adversary's choices. Empty slices select the
// exhaustive default noted per field.
type SearchSpace struct {
	// LabelPairs lists ordered (labelA, labelB) pairs; both agents run
	// the deterministic algorithm with their own label. Defaults to all
	// ordered pairs of distinct labels in {1..L}.
	LabelPairs [][2]int
	// L is the label-space size used when LabelPairs is nil.
	L int
	// StartPairs lists ordered (startA, startB) pairs. Defaults to all
	// ordered pairs of distinct nodes.
	StartPairs [][2]int
	// Delays lists wake delays for agent B (0 = simultaneous start).
	// Defaults to {0}.
	Delays []int
}

// Trajectories precompiles and caches solo trajectories per (label,
// start) so adversary searches do not recompile schedules. The cache is
// not safe for concurrent use.
type Trajectories struct {
	g           *graph.Graph
	ex          explore.Explorer
	scheduleFor func(label int) Schedule
	cache       map[[2]int]Trajectory
}

// NewTrajectories returns an empty cache over the given graph, explorer
// and per-label schedule function.
func NewTrajectories(g *graph.Graph, ex explore.Explorer, scheduleFor func(label int) Schedule) *Trajectories {
	return &Trajectories{
		g:           g,
		ex:          ex,
		scheduleFor: scheduleFor,
		cache:       make(map[[2]int]Trajectory),
	}
}

// Get returns the solo trajectory of the given label from the given
// start, compiling it on first use.
func (tc *Trajectories) Get(label, start int) (Trajectory, error) {
	key := [2]int{label, start}
	if tr, ok := tc.cache[key]; ok {
		return tr, nil
	}
	tr, err := CompileTrajectory(tc.g, tc.ex, start, tc.scheduleFor(label))
	if err != nil {
		return Trajectory{}, fmt.Errorf("sim: label %d start %d: %w", label, start, err)
	}
	tc.cache[key] = tr
	return tr, nil
}

// Meet scans two solo trajectories for the first meeting round under
// the given wake rounds (the earlier agent must wake in round 1). It is
// the core of Run, exposed so callers that compile trajectories
// themselves (adversary searches, the unknown-E doubling wrapper) can
// reuse the scan without a Scenario.
func Meet(trajA, trajB Trajectory, wakeA, wakeB int, parachuted bool) Result {
	horizon := max(wakeA+trajA.Len(), wakeB+trajB.Len())
	for t := 1; t <= horizon; t++ {
		kA := t - wakeA + 1
		kB := t - wakeB + 1
		if parachuted && (kA < 0 || kB < 0) {
			continue
		}
		pA := trajA.At(kA)
		pB := trajB.At(kB)
		if pA == pB {
			// Alternative accounting (Conclusion): rounds and traversals
			// measured from the later agent's wake-up.
			later := max(wakeA, wakeB)
			fromLater := t - later + 1
			if fromLater < 0 {
				fromLater = 0
			}
			costLater := trajA.MovesAt(kA) - trajA.MovesAt(later-wakeA) +
				trajB.MovesAt(kB) - trajB.MovesAt(later-wakeB)
			return Result{
				Met:               true,
				Round:             t,
				Node:              pA,
				CostA:             trajA.MovesAt(kA),
				CostB:             trajB.MovesAt(kB),
				TimeFromLaterWake: fromLater,
				CostFromLaterWake: costLater,
			}
		}
	}
	return Result{
		Met:   false,
		Node:  -1,
		CostA: trajA.MovesAt(trajA.Len()),
		CostB: trajB.MovesAt(trajB.Len()),
	}
}

// Search runs the adversary over the given space and returns the worst
// time and cost found. Every execution must achieve rendezvous for
// AllMet to hold; executions that never meet are still counted (with
// their full schedule costs) so the caller can detect the violation.
func Search(tc *Trajectories, space SearchSpace) (WorstCase, error) {
	labelPairs := space.LabelPairs
	if labelPairs == nil {
		if space.L < 2 {
			return WorstCase{}, fmt.Errorf("sim: Search: need L >= 2 (got %d) when LabelPairs is nil", space.L)
		}
		for a := 1; a <= space.L; a++ {
			for b := 1; b <= space.L; b++ {
				if a != b {
					labelPairs = append(labelPairs, [2]int{a, b})
				}
			}
		}
	}
	startPairs := space.StartPairs
	if startPairs == nil {
		n := tc.g.N()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v {
					startPairs = append(startPairs, [2]int{u, v})
				}
			}
		}
	}
	delays := space.Delays
	if delays == nil {
		delays = []int{0}
	}

	wc := WorstCase{AllMet: true}
	for _, lp := range labelPairs {
		for _, sp := range startPairs {
			trajA, err := tc.Get(lp[0], sp[0])
			if err != nil {
				return WorstCase{}, err
			}
			trajB, err := tc.Get(lp[1], sp[1])
			if err != nil {
				return WorstCase{}, err
			}
			for _, d := range delays {
				res := Meet(trajA, trajB, 1, 1+d, false)
				wc.Runs++
				if !res.Met {
					wc.AllMet = false
				}
				if res.Met && res.Time() > wc.Time.Value {
					wc.Time = Witness{LabelA: lp[0], LabelB: lp[1], StartA: sp[0], StartB: sp[1], DelayB: d, Value: res.Time()}
				}
				if res.Cost() > wc.Cost.Value {
					wc.Cost = Witness{LabelA: lp[0], LabelB: lp[1], StartA: sp[0], StartB: sp[1], DelayB: d, Value: res.Cost()}
				}
			}
		}
	}
	return wc, nil
}
