package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"rendezvous/internal/explore"
	"rendezvous/internal/graph"
)

// Witness records the configuration achieving an extreme value in an
// adversary search.
type Witness struct {
	LabelA, LabelB int
	StartA, StartB int
	DelayB         int // agent B's wake round minus 1
	Value          int
}

// WorstCase aggregates the adversary's best achievements over a searched
// configuration space: the maximum rendezvous time and cost, with the
// configurations that realise them. Both witnesses follow the paper's
// until-meeting measures, so only executions that achieved rendezvous
// update them; executions that never meet are still counted in Runs and
// recorded through AllMet (this matches the segment-level ring engine,
// whose sweep has always skipped non-meeting executions when updating
// witnesses).
type WorstCase struct {
	Time Witness
	Cost Witness
	// Runs is the number of executions examined. Under the adversary
	// engine's symmetry reduction only one start pair per automorphism
	// orbit executes, so Runs can be smaller than the nominal size of
	// the configuration space; values and witnesses are unaffected.
	Runs int
	// AllMet reports whether every execution achieved rendezvous; a
	// correct algorithm must make this true.
	AllMet bool
}

// Merge folds the next shard's results into wc. Shards are folded in
// canonical enumeration order with a strictly-greater comparison, so the
// surviving witness is the first configuration (in that order) achieving
// the maximum — exactly the witness the serial scan would keep. This is
// what makes parallel output bit-for-bit equal to serial output.
func (wc *WorstCase) Merge(next WorstCase) {
	if next.Time.Value > wc.Time.Value {
		wc.Time = next.Time
	}
	if next.Cost.Value > wc.Cost.Value {
		wc.Cost = next.Cost
	}
	wc.Runs += next.Runs
	wc.AllMet = wc.AllMet && next.AllMet
}

// Observe records one execution outcome under the canonical
// strictly-greater update rule shared by the serial and parallel paths.
// Executions that never meet flip AllMet but update neither witness:
// the paper defines both time and cost until the meeting, so a
// non-meeting execution has no finite value of either (its schedule
// costs are an artifact of the simulation horizon, not of the model).
func (wc *WorstCase) Observe(labelA, labelB, startA, startB, delay int, res Result) {
	if !res.Met {
		wc.Runs++
		wc.AllMet = false
		return
	}
	wc.ObserveOutcome(labelA, labelB, startA, startB, delay, res.Time(), res.Cost())
}

// ObserveOutcome is Observe for callers that already hold the two
// scalars a recorded execution contributes — the meeting round (0 if
// the agents never met, exactly as Result.Round encodes it) and the
// combined cost of both agents until the meeting (ignored when round
// is 0). Batch executors use it to aggregate outcomes without
// materialising a Result per execution; the update rule is identical
// to Observe's by construction.
func (wc *WorstCase) ObserveOutcome(labelA, labelB, startA, startB, delay, round, cost int) {
	wc.Runs++
	if round == 0 {
		wc.AllMet = false
		return
	}
	if round > wc.Time.Value {
		wc.Time = Witness{LabelA: labelA, LabelB: labelB, StartA: startA, StartB: startB, DelayB: delay, Value: round}
	}
	if cost > wc.Cost.Value {
		wc.Cost = Witness{LabelA: labelA, LabelB: labelB, StartA: startA, StartB: startB, DelayB: delay, Value: cost}
	}
}

// SearchSpace describes the adversary's choices. Empty slices select the
// exhaustive default noted per field.
type SearchSpace struct {
	// LabelPairs lists ordered (labelA, labelB) pairs; both agents run
	// the deterministic algorithm with their own label. The model
	// requires distinct labels >= 1, which Expand enforces. Defaults to
	// all ordered pairs of distinct labels in {1..L}.
	LabelPairs [][2]int
	// L is the label-space size used when LabelPairs is nil.
	L int
	// StartPairs lists ordered (startA, startB) pairs. The model places
	// the agents at distinct nodes, so pairs with equal entries are
	// rejected by Expand. Defaults to all ordered pairs of distinct
	// nodes.
	StartPairs [][2]int
	// Delays lists wake delays for agent B (0 = simultaneous start).
	// Defaults to {0}.
	Delays []int
}

// Expand materialises the space's enumeration over a graph of n nodes,
// applying the documented defaults and validating explicit pairs
// against the model the way the defaults always were: labels must be
// distinct and >= 1, starts must be distinct. The returned slices
// define the canonical configuration order (labelPairs × startPairs ×
// delays) that both the serial and the sharded parallel search follow.
func (space SearchSpace) Expand(n int) (labelPairs, startPairs [][2]int, delays []int, err error) {
	labelPairs = space.LabelPairs
	if labelPairs == nil {
		if space.L < 2 {
			return nil, nil, nil, fmt.Errorf("sim: Search: need L >= 2 (got %d) when LabelPairs is nil", space.L)
		}
		labelPairs = make([][2]int, 0, space.L*(space.L-1))
		for a := 1; a <= space.L; a++ {
			for b := 1; b <= space.L; b++ {
				if a != b {
					labelPairs = append(labelPairs, [2]int{a, b})
				}
			}
		}
	} else {
		for i, lp := range labelPairs {
			if lp[0] < 1 || lp[1] < 1 {
				return nil, nil, nil, fmt.Errorf("sim: Search: LabelPairs[%d] = %v: labels must be >= 1", i, lp)
			}
			if lp[0] == lp[1] {
				return nil, nil, nil, fmt.Errorf("sim: Search: LabelPairs[%d] = %v: the model requires distinct labels", i, lp)
			}
		}
	}
	startPairs = space.StartPairs
	if startPairs == nil {
		if n < 2 {
			return nil, nil, nil, fmt.Errorf("sim: Search: need a graph with >= 2 nodes (got %d) when StartPairs is nil", n)
		}
		startPairs = make([][2]int, 0, n*(n-1))
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v {
					startPairs = append(startPairs, [2]int{u, v})
				}
			}
		}
	} else {
		for i, sp := range startPairs {
			if sp[0] == sp[1] {
				return nil, nil, nil, fmt.Errorf("sim: Search: StartPairs[%d] = %v: the model requires distinct start nodes", i, sp)
			}
		}
	}
	delays = space.Delays
	if delays == nil {
		delays = []int{0}
	}
	return labelPairs, startPairs, delays, nil
}

// SearchOptions tunes how an adversary search executes. The zero value
// reproduces the historical serial behaviour.
type SearchOptions struct {
	// Workers is the number of goroutines the label-pair space is
	// sharded across. 0 and 1 run serially in the calling goroutine; a
	// negative value selects GOMAXPROCS. Output is bit-for-bit identical
	// for every worker count.
	Workers int
	// Context cancels a long-running search between executions. Nil
	// means context.Background(). On cancellation the search returns
	// ctx.Err().
	Context context.Context
}

// ResolveWorkers resolves the Workers option to a concrete goroutine
// count for the given number of shardable units (clamped to [1, units];
// negative selects GOMAXPROCS).
func (o SearchOptions) ResolveWorkers(units int) int {
	w := o.Workers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > units {
		w = units
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (o SearchOptions) context() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Trajectories precompiles and caches solo trajectories per (label,
// start) so adversary searches do not recompile schedules. A single
// cache is not safe for concurrent use; the parallel search gives each
// worker its own Clone.
type Trajectories struct {
	g           *graph.Graph
	ex          explore.Explorer
	scheduleFor func(label int) Schedule
	cache       map[[2]int]Trajectory
}

// NewTrajectories returns an empty cache over the given graph, explorer
// and per-label schedule function. scheduleFor is shared by every Clone
// of the cache, so under a parallel search (SearchWith with Workers > 1)
// it is called concurrently from every worker: it must be a
// deterministic function safe for concurrent use, not a memoizing
// closure over shared state.
func NewTrajectories(g *graph.Graph, ex explore.Explorer, scheduleFor func(label int) Schedule) *Trajectories {
	return &Trajectories{
		g:           g,
		ex:          ex,
		scheduleFor: scheduleFor,
		cache:       make(map[[2]int]Trajectory),
	}
}

// Clone returns a fresh, empty cache over the same graph, explorer and
// schedule function. Each worker of a parallel search owns a clone, so
// no locking is needed on the hot path; trajectories are deterministic
// functions of (label, start), so recompilation cannot diverge.
func (tc *Trajectories) Clone() *Trajectories {
	return NewTrajectories(tc.g, tc.ex, tc.scheduleFor)
}

// Graph returns the graph the cache compiles against.
func (tc *Trajectories) Graph() *graph.Graph { return tc.g }

// Explorer returns the EXPLORE procedure the cache compiles with.
func (tc *Trajectories) Explorer() explore.Explorer { return tc.ex }

// ScheduleFor returns the schedule of the given label.
func (tc *Trajectories) ScheduleFor(label int) Schedule { return tc.scheduleFor(label) }

// Get returns the solo trajectory of the given label from the given
// start, compiling it on first use.
func (tc *Trajectories) Get(label, start int) (Trajectory, error) {
	key := [2]int{label, start}
	if tr, ok := tc.cache[key]; ok {
		return tr, nil
	}
	tr, err := CompileTrajectory(tc.g, tc.ex, start, tc.scheduleFor(label))
	if err != nil {
		return Trajectory{}, fmt.Errorf("sim: label %d start %d: %w", label, start, err)
	}
	tc.cache[key] = tr
	return tr, nil
}

// Meet scans two solo trajectories for the first meeting round under
// the given wake rounds (the earlier agent must wake in round 1). It is
// the core of Run, exposed so callers that compile trajectories
// themselves (adversary searches, the unknown-E doubling wrapper) can
// reuse the scan without a Scenario.
func Meet(trajA, trajB Trajectory, wakeA, wakeB int, parachuted bool) Result {
	horizon := max(wakeA+trajA.Len(), wakeB+trajB.Len())
	for t := 1; t <= horizon; t++ {
		kA := t - wakeA + 1
		kB := t - wakeB + 1
		if parachuted && (kA < 0 || kB < 0) {
			continue
		}
		pA := trajA.At(kA)
		pB := trajB.At(kB)
		if pA == pB {
			// Alternative accounting (Conclusion): rounds and traversals
			// measured from the later agent's wake-up.
			later := max(wakeA, wakeB)
			fromLater := t - later + 1
			if fromLater < 0 {
				fromLater = 0
			}
			costLater := trajA.MovesAt(kA) - trajA.MovesAt(later-wakeA) +
				trajB.MovesAt(kB) - trajB.MovesAt(later-wakeB)
			return Result{
				Met:               true,
				Round:             t,
				Node:              pA,
				CostA:             trajA.MovesAt(kA),
				CostB:             trajB.MovesAt(kB),
				TimeFromLaterWake: fromLater,
				CostFromLaterWake: costLater,
			}
		}
	}
	return Result{
		Met:   false,
		Node:  -1,
		CostA: trajA.MovesAt(trajA.Len()),
		CostB: trajB.MovesAt(trajB.Len()),
	}
}

// Sharded is the engine's shared fan-out scaffolding: it splits pairs
// into contiguous shards — one per resolved worker — runs sweep on each
// shard concurrently, and folds the per-shard results in shard order
// with merge. With one resolved worker it calls sweep once on the whole
// slice in the calling goroutine. Folding in shard order with a
// strictly-greater merge is what makes parallel output bit-for-bit
// equal to serial; every parallel search in the engine (sim, ringsim,
// adversary) goes through this one implementation so the determinism
// recipe cannot silently diverge between executors. sweep must be safe
// to call from multiple goroutines on disjoint shards.
func Sharded[R any](opts SearchOptions, pairs [][2]int, sweep func(ctx context.Context, shard [][2]int) (R, error), merge func(acc *R, next R)) (R, error) {
	ctx := opts.context()
	workers := opts.ResolveWorkers(len(pairs))
	if workers <= 1 {
		return sweep(ctx, pairs)
	}

	type shardResult struct {
		res R
		err error
	}
	results := make([]shardResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(pairs) / workers
		hi := (w + 1) * len(pairs) / workers
		wg.Add(1)
		go func(w int, shard [][2]int) {
			defer wg.Done()
			res, err := sweep(ctx, shard)
			results[w] = shardResult{res, err}
		}(w, pairs[lo:hi])
	}
	wg.Wait()

	for _, r := range results {
		if r.err != nil {
			var zero R
			return zero, r.err
		}
	}
	acc := results[0].res
	for _, r := range results[1:] {
		merge(&acc, r.res)
	}
	return acc, nil
}

// searchShard runs the serial kernel over one contiguous slice of label
// pairs, using (and filling) the given cache. The context is checked
// once per label pair, so cancellation latency is bounded by one
// (startPairs × delays) sweep.
func searchShard(ctx context.Context, tc *Trajectories, labelPairs, startPairs [][2]int, delays []int) (WorstCase, error) {
	wc := WorstCase{AllMet: true}
	for _, lp := range labelPairs {
		if err := ctx.Err(); err != nil {
			return WorstCase{}, err
		}
		for _, sp := range startPairs {
			trajA, err := tc.Get(lp[0], sp[0])
			if err != nil {
				return WorstCase{}, err
			}
			trajB, err := tc.Get(lp[1], sp[1])
			if err != nil {
				return WorstCase{}, err
			}
			for _, d := range delays {
				wc.Observe(lp[0], lp[1], sp[0], sp[1], d, Meet(trajA, trajB, 1, 1+d, false))
			}
		}
	}
	return wc, nil
}

// Search runs the adversary over the given space and returns the worst
// time and cost found. Every execution must achieve rendezvous for
// AllMet to hold; executions that never meet are still counted in Runs
// so the caller can detect the violation, but contribute to neither
// witness (both measures are defined until the meeting).
//
// Search is the serial entry point kept for existing callers; it is
// SearchWith with zero options.
func Search(tc *Trajectories, space SearchSpace) (WorstCase, error) {
	return SearchWith(tc, space, SearchOptions{})
}

// SearchWith runs the adversary with explicit execution options. With
// Workers > 1 the label-pair space is split into contiguous shards, one
// goroutine per shard, each with its own cloned trajectory cache; the
// per-shard results are folded in shard order, which makes the output —
// witnesses, Runs, AllMet — bit-for-bit identical to the serial scan
// regardless of scheduling.
func SearchWith(tc *Trajectories, space SearchSpace, opts SearchOptions) (WorstCase, error) {
	labelPairs, startPairs, delays, err := space.Expand(tc.g.N())
	if err != nil {
		return WorstCase{}, err
	}
	if opts.ResolveWorkers(len(labelPairs)) <= 1 {
		// Serial: use (and warm) the caller's cache directly.
		return searchShard(opts.context(), tc, labelPairs, startPairs, delays)
	}
	return Sharded(opts, labelPairs, func(ctx context.Context, shard [][2]int) (WorstCase, error) {
		return searchShard(ctx, tc.Clone(), shard, startPairs, delays)
	}, (*WorstCase).Merge)
}
