package sim

import (
	"errors"
	"testing"

	"rendezvous/internal/explore"
	"rendezvous/internal/graph"
)

// parityExplorer is a test double on the oriented ring: plans from an
// even start go clockwise (port 0), plans from an odd start go
// counterclockwise (port 1). On an even ring both directions cover all
// nodes in n-1 steps. It lets tests steer the two agents toward or
// across each other.
type parityExplorer struct{}

func (parityExplorer) Name() string                { return "parity" }
func (parityExplorer) Duration(g *graph.Graph) int { return g.N() - 1 }
func (parityExplorer) Plan(g *graph.Graph, start int) (explore.Plan, error) {
	port := start % 2
	p := make(explore.Plan, g.N()-1)
	for i := range p {
		p[i] = port
	}
	return p, nil
}

func TestCompileTrajectoryExplore(t *testing.T) {
	g := graph.OrientedRing(6)
	tr, err := CompileTrajectory(g, explore.OrientedRingSweep{}, 2, Schedule{SegmentExplore})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d, want 5", tr.Len())
	}
	want := []int{2, 3, 4, 5, 0, 1}
	for k, w := range want {
		if tr.At(k) != w {
			t.Errorf("At(%d) = %d, want %d", k, tr.At(k), w)
		}
		if tr.MovesAt(k) != k {
			t.Errorf("MovesAt(%d) = %d, want %d", k, tr.MovesAt(k), k)
		}
	}
}

func TestCompileTrajectoryWaitAndCompose(t *testing.T) {
	g := graph.OrientedRing(5)
	sched := Schedule{SegmentWait, SegmentExplore, SegmentWait, SegmentExplore}
	tr, err := CompileTrajectory(g, explore.OrientedRingSweep{}, 0, sched)
	if err != nil {
		t.Fatal(err)
	}
	e := 4
	if tr.Len() != 4*e {
		t.Fatalf("Len = %d, want %d", tr.Len(), 4*e)
	}
	// During the first wait the agent stays at 0.
	for k := 0; k <= e; k++ {
		if tr.At(k) != 0 {
			t.Errorf("At(%d) = %d, want 0 during wait", k, tr.At(k))
		}
	}
	// First exploration walks to node 4; second wait holds there; second
	// exploration continues clockwise from 4 back to 3.
	if got := tr.At(2 * e); got != 4 {
		t.Errorf("after first explore at %d, want 4", got)
	}
	if got := tr.At(3 * e); got != 4 {
		t.Errorf("after second wait at %d, want 4", got)
	}
	if got := tr.At(4 * e); got != 3 {
		t.Errorf("after second explore at %d, want 3", got)
	}
	if got := tr.MovesAt(4 * e); got != 2*e {
		t.Errorf("total moves = %d, want %d", got, 2*e)
	}
}

func TestTrajectoryBoundaries(t *testing.T) {
	g := graph.OrientedRing(4)
	tr, err := CompileTrajectory(g, explore.OrientedRingSweep{}, 1, Schedule{SegmentExplore})
	if err != nil {
		t.Fatal(err)
	}
	if tr.At(-3) != 1 {
		t.Error("At(negative) must return the start")
	}
	if tr.At(100) != tr.At(tr.Len()) {
		t.Error("At(beyond) must freeze at the final node")
	}
	if tr.MovesAt(-1) != 0 {
		t.Error("MovesAt(negative) must be 0")
	}
	if tr.MovesAt(100) != tr.MovesAt(tr.Len()) {
		t.Error("MovesAt(beyond) must freeze at the final count")
	}
}

func TestCompileTrajectoryErrors(t *testing.T) {
	g := graph.Path(4)
	if _, err := CompileTrajectory(g, explore.OrientedRingSweep{}, 0, Schedule{SegmentExplore}); err == nil {
		t.Error("ring sweep on a path: want error")
	}
	if _, err := CompileTrajectory(g, explore.DFS{}, 0, Schedule{Segment(99)}); err == nil {
		t.Error("unknown segment: want error")
	}
}

func TestRunSimpleMeeting(t *testing.T) {
	g := graph.OrientedRing(8)
	// A explores immediately; B waits one segment. A must find B at B's
	// start within E rounds.
	res, err := Run(Scenario{
		Graph:    g,
		Explorer: explore.OrientedRingSweep{},
		A:        AgentSpec{Label: 1, Start: 0, Wake: 1, Schedule: Schedule{SegmentExplore}},
		B:        AgentSpec{Label: 2, Start: 5, Wake: 1, Schedule: Schedule{SegmentWait}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("agents did not meet")
	}
	if res.Node != 5 {
		t.Errorf("meeting node = %d, want 5", res.Node)
	}
	if res.Round != 5 {
		t.Errorf("meeting round = %d, want 5 (clockwise distance 0->5)", res.Round)
	}
	if res.Cost() != 5 || res.CostA != 5 || res.CostB != 0 {
		t.Errorf("cost = (%d,%d), want (5,0)", res.CostA, res.CostB)
	}
	if res.Time() != res.Round {
		t.Errorf("Time() = %d, want %d", res.Time(), res.Round)
	}
}

func TestRunSleepingAgentCanBeFound(t *testing.T) {
	g := graph.OrientedRing(6)
	// B wakes far in the future; in the default model it rests at its
	// start from round 0 and A finds it during A's first exploration.
	res, err := Run(Scenario{
		Graph:    g,
		Explorer: explore.OrientedRingSweep{},
		A:        AgentSpec{Label: 1, Start: 0, Wake: 1, Schedule: Schedule{SegmentExplore}},
		B:        AgentSpec{Label: 2, Start: 3, Wake: 100, Schedule: Schedule{SegmentExplore}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || res.Round != 3 || res.CostB != 0 {
		t.Errorf("got %+v, want meeting at round 3 with sleeping B", res)
	}
}

func TestRunParachutedAgentAbsentBeforeWake(t *testing.T) {
	g := graph.OrientedRing(6)
	sc := Scenario{
		Graph:      g,
		Explorer:   explore.OrientedRingSweep{},
		A:          AgentSpec{Label: 1, Start: 0, Wake: 1, Schedule: Schedule{SegmentExplore}},
		B:          AgentSpec{Label: 2, Start: 3, Wake: 100, Schedule: Schedule{SegmentWait}},
		Parachuted: true,
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Errorf("parachuted B (wake 100) was met at round %d; A's schedule ends at round 5", res.Round)
	}
	// Same scenario in the default model: meeting at round 3.
	sc.Parachuted = false
	res, err = Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || res.Round != 3 {
		t.Errorf("default model: got %+v, want meeting at round 3", res)
	}
}

func TestRunCrossingEdgeIsNotAMeeting(t *testing.T) {
	// On an even oriented ring, A (even start) walks clockwise while B
	// (odd start, adjacent) walks counterclockwise: they swap positions
	// across shared edges every round and must never be considered met.
	g := graph.OrientedRing(4)
	res, err := Run(Scenario{
		Graph:    g,
		Explorer: parityExplorer{},
		A:        AgentSpec{Label: 1, Start: 0, Wake: 1, Schedule: Schedule{SegmentExplore}},
		B:        AgentSpec{Label: 2, Start: 1, Wake: 1, Schedule: Schedule{SegmentExplore}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Errorf("edge-crossing counted as meeting at round %d", res.Round)
	}
}

func TestRunValidation(t *testing.T) {
	g := graph.OrientedRing(5)
	ex := explore.OrientedRingSweep{}
	base := Scenario{
		Graph:    g,
		Explorer: ex,
		A:        AgentSpec{Label: 1, Start: 0, Wake: 1, Schedule: Schedule{SegmentExplore}},
		B:        AgentSpec{Label: 2, Start: 1, Wake: 1, Schedule: Schedule{SegmentWait}},
	}
	tests := []struct {
		name   string
		mutate func(*Scenario)
		want   error
	}{
		{"same start", func(s *Scenario) { s.B.Start = s.A.Start }, ErrSameStart},
		{"same label", func(s *Scenario) { s.B.Label = s.A.Label }, ErrSameLabel},
		{"no early wake", func(s *Scenario) { s.A.Wake = 2; s.B.Wake = 3 }, ErrBadWake},
		{"start out of range", func(s *Scenario) { s.B.Start = 17 }, ErrStartOutRange},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sc := base
			tt.mutate(&sc)
			if _, err := Run(sc); !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestScheduleHelpers(t *testing.T) {
	s := FromBits([]byte{1, 0, 0, 1, 1})
	want := Schedule{SegmentExplore, SegmentWait, SegmentWait, SegmentExplore, SegmentExplore}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("FromBits = %v, want %v", s, want)
		}
	}
	if got := s.Explorations(); got != 3 {
		t.Errorf("Explorations = %d, want 3", got)
	}
	if got := s.Rounds(7); got != 35 {
		t.Errorf("Rounds(7) = %d, want 35", got)
	}
	if SegmentWait.String() != "wait" || SegmentExplore.String() != "explore" {
		t.Error("Segment.String broken")
	}
}

func TestSearchFindsWorstCase(t *testing.T) {
	g := graph.OrientedRing(8)
	// Oracle baseline: label 1 waits forever (one wait segment), label 2
	// explores once. Worst time over all start pairs is E (B needs the
	// full sweep to reach the node just behind it).
	scheduleFor := func(label int) Schedule {
		if label == 1 {
			return Schedule{SegmentWait}
		}
		return Schedule{SegmentExplore}
	}
	tc := NewTrajectories(g, explore.OrientedRingSweep{}, scheduleFor)
	wc, err := Search(tc, SearchSpace{L: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !wc.AllMet {
		t.Fatal("oracle baseline failed to always meet")
	}
	e := 7
	if wc.Time.Value != e {
		t.Errorf("worst time = %d, want E = %d", wc.Time.Value, e)
	}
	if wc.Cost.Value != e {
		t.Errorf("worst cost = %d, want E = %d", wc.Cost.Value, e)
	}
	if wc.Runs != 2*8*7 {
		t.Errorf("Runs = %d, want %d", wc.Runs, 2*8*7)
	}
}

func TestSearchDetectsNonMeeting(t *testing.T) {
	g := graph.OrientedRing(6)
	// Both labels explore immediately and forever stay in lockstep
	// rotation: same-direction sweeps never meet from distinct starts.
	scheduleFor := func(int) Schedule { return Schedule{SegmentExplore} }
	tc := NewTrajectories(g, explore.OrientedRingSweep{}, scheduleFor)
	wc, err := Search(tc, SearchSpace{L: 2})
	if err != nil {
		t.Fatal(err)
	}
	if wc.AllMet {
		t.Error("symmetric lockstep sweeps reported as always meeting")
	}
}

func TestSearchExplicitSpace(t *testing.T) {
	g := graph.OrientedRing(10)
	scheduleFor := func(label int) Schedule {
		if label == 3 {
			return Schedule{SegmentWait, SegmentWait}
		}
		return Schedule{SegmentExplore}
	}
	tc := NewTrajectories(g, explore.OrientedRingSweep{}, scheduleFor)
	wc, err := Search(tc, SearchSpace{
		LabelPairs: [][2]int{{7, 3}},
		StartPairs: [][2]int{{0, 9}},
		Delays:     []int{0, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if wc.Runs != 2 {
		t.Errorf("Runs = %d, want 2", wc.Runs)
	}
	if !wc.AllMet {
		t.Error("expected all executions to meet")
	}
	// Clockwise distance 0 -> 9 is 9 regardless of delay; worst time 9.
	if wc.Time.Value != 9 {
		t.Errorf("worst time = %d, want 9", wc.Time.Value)
	}
}

func TestSearchNeedsLabels(t *testing.T) {
	g := graph.OrientedRing(4)
	tc := NewTrajectories(g, explore.OrientedRingSweep{}, func(int) Schedule { return nil })
	if _, err := Search(tc, SearchSpace{L: 1}); err == nil {
		t.Error("L=1 with nil LabelPairs: want error")
	}
}
