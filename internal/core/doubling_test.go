package core

import (
	"math/rand"
	"testing"

	"rendezvous/internal/graph"
	"rendezvous/internal/sim"
	"rendezvous/internal/uxs"
)

func TestDoublingTrajectoryStitches(t *testing.T) {
	g := graph.OrientedRing(6)
	fam := uxs.Family{}
	traj, err := DoublingTrajectory(g, fam, Cheap{}, 2, Params{L: 4}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Total rounds: schedule has 2·2+2 = 6 segments, run at levels 1..4
	// with E_i = 2·2^i-2.
	want := 0
	for i := 1; i <= 4; i++ {
		want += 6 * (2*(1<<i) - 2)
	}
	if traj.Len() != want {
		t.Errorf("trajectory length = %d, want %d", traj.Len(), want)
	}
	// Moves must be monotone and adjacent positions adjacent-or-equal.
	for k := 1; k <= traj.Len(); k++ {
		if traj.Moves[k] < traj.Moves[k-1] || traj.Moves[k] > traj.Moves[k-1]+1 {
			t.Fatalf("Moves not a unit-step cumulative count at %d", k)
		}
		if traj.Moves[k] == traj.Moves[k-1] && traj.Pos[k] != traj.Pos[k-1] {
			t.Fatalf("position changed without a move at %d", k)
		}
	}
}

func TestDoublingValidation(t *testing.T) {
	g := graph.OrientedRing(6)
	if _, err := DoublingTrajectory(g, uxs.Family{}, Cheap{}, 1, Params{L: 4}, 0, 0); err == nil {
		t.Error("levels=0: want error")
	}
	base := DoublingScenario{
		Graph:  g,
		Family: uxs.Family{},
		Algo:   Fast{},
		Params: Params{L: 4},
		A:      sim.AgentSpec{Label: 1, Start: 0, Wake: 1},
		B:      sim.AgentSpec{Label: 2, Start: 3, Wake: 1},
		Levels: 4,
	}
	sc := base
	sc.B.Start = 0
	if _, err := RunDoubling(sc); err != sim.ErrSameStart {
		t.Errorf("same start: err = %v", err)
	}
	sc = base
	sc.B.Label = 1
	if _, err := RunDoubling(sc); err != sim.ErrSameLabel {
		t.Errorf("same label: err = %v", err)
	}
	sc = base
	sc.A.Wake, sc.B.Wake = 2, 2
	if _, err := RunDoubling(sc); err != sim.ErrBadWake {
		t.Errorf("bad wake: err = %v", err)
	}
}

func TestDoublingAchievesRendezvousWithoutKnowingE(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	fam := uxs.Family{}
	graphs := map[string]*graph.Graph{
		"ring-11": graph.OrientedRing(11),
		"tree-9":  graph.RandomTree(9, rng),
		"grid":    graph.Grid(3, 3),
	}
	for name, g := range graphs {
		for _, algo := range []Algorithm{Cheap{}, Fast{}, NewFastWithRelabeling(2)} {
			levels := fam.LevelFor(g.N()) + 1
			for _, delay := range []int{0, 3} {
				res, err := RunDoubling(DoublingScenario{
					Graph:  g,
					Family: fam,
					Algo:   algo,
					Params: Params{L: 5},
					A:      sim.AgentSpec{Label: 2, Start: 0, Wake: 1},
					B:      sim.AgentSpec{Label: 5, Start: g.N() / 2, Wake: 1 + delay},
					Levels: levels,
				})
				if err != nil {
					t.Fatalf("%s/%s delay %d: %v", name, algo.Name(), delay, err)
				}
				if !res.Met {
					t.Errorf("%s/%s delay %d: agents never met", name, algo.Name(), delay)
				}
			}
		}
	}
}

func TestDoublingTelescopingOverhead(t *testing.T) {
	// The Conclusion's claim: iterating over EXPLORE_1..EXPLORE_j with
	// geometrically growing E_i costs only a constant factor over running
	// directly at level j. Compare worst-case time over all start pairs.
	g := graph.OrientedRing(13)
	fam := uxs.Family{}
	level := fam.LevelFor(g.N()) // 4: E_4 = 30
	params := Params{L: 4}
	algo := Fast{}

	worstDoubling := 0
	worstDirect := 0
	for sa := 0; sa < g.N(); sa++ {
		for sb := 0; sb < g.N(); sb++ {
			if sa == sb {
				continue
			}
			res, err := RunDoubling(DoublingScenario{
				Graph: g, Family: fam, Algo: algo, Params: params,
				A:      sim.AgentSpec{Label: 1, Start: sa, Wake: 1},
				B:      sim.AgentSpec{Label: 3, Start: sb, Wake: 1},
				Levels: level + 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Met {
				t.Fatalf("doubling never met from (%d,%d)", sa, sb)
			}
			if res.Time() > worstDoubling {
				worstDoubling = res.Time()
			}

			direct, err := sim.Run(sim.Scenario{
				Graph:    g,
				Explorer: fam.Level(level),
				A:        sim.AgentSpec{Label: 1, Start: sa, Wake: 1, Schedule: algo.Schedule(1, params)},
				B:        sim.AgentSpec{Label: 3, Start: sb, Wake: 1, Schedule: algo.Schedule(3, params)},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !direct.Met {
				t.Fatalf("direct never met from (%d,%d)", sa, sb)
			}
			if direct.Time() > worstDirect {
				worstDirect = direct.Time()
			}
		}
	}
	// Sum of E_1..E_{j} <= 2·E_j, so the wrapper's overhead factor over
	// the direct run is bounded by a small constant; assert a generous 4x.
	if worstDoubling > 4*worstDirect {
		t.Errorf("doubling worst time %d exceeds 4x direct worst time %d", worstDoubling, worstDirect)
	}
}
