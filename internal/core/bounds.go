package core

import (
	"math/bits"

	"rendezvous/internal/label"
)

// This file centralises the worst-case guarantees claimed by the paper's
// propositions, as executable formulas. The benchmark harness checks
// every measured execution against them, and EXPERIMENTS.md reports the
// measured-to-claimed ratios. Where the paper's stated constant is
// provably loose for the literal algorithm (it drops lower-order terms),
// the sharp variant is provided alongside and the discrepancy is
// documented.

// floorLog2 returns ⌊log₂ x⌋ for x >= 1, and 0 for x < 1 (the paper
// writes log(L-1) with L >= 2, so log of at least 1).
func floorLog2(x int) int {
	if x < 1 {
		return 0
	}
	return bits.Len(uint(x)) - 1
}

// CheapCostBound is Proposition 2.1's cost guarantee: at most 3E.
func CheapCostBound(e int) int { return 3 * e }

// CheapTimeBound is Proposition 2.1's time guarantee for a concrete
// smaller label ℓ: at most (2ℓ+3)E. The worst case over the label space
// is (2L+1)E (the smaller label is at most L-1).
func CheapTimeBound(e, smallerLabel int) int { return (2*smallerLabel + 3) * e }

// CheapWorstTimeBound is the label-space-wide form of Proposition 2.1:
// (2L+1)E.
func CheapWorstTimeBound(e, L int) int { return (2*L + 1) * e }

// CheapSimultaneousCost is the exact cost of the simultaneous-start
// variant of Cheap: E (only the smaller-labeled agent's single
// exploration is charged before the meeting).
func CheapSimultaneousCost(e int) int { return e }

// CheapSimultaneousTimeBound is the simultaneous-start variant's time
// guarantee for a concrete smaller label ℓ: at most ℓE; at most (L-1)E
// over the whole label space (the smaller of two distinct labels is at
// most L-1).
func CheapSimultaneousTimeBound(e, smallerLabel int) int { return smallerLabel * e }

// FastTimeBound is Proposition 2.2's time guarantee:
// (4·⌊log(L-1)⌋ + 9)E.
func FastTimeBound(e, L int) int { return (4*floorLog2(L-1) + 9) * e }

// FastCostBound is Proposition 2.2's cost guarantee:
// (8·⌊log(L-1)⌋ + 18)E — twice the time bound.
func FastCostBound(e, L int) int { return 2 * FastTimeBound(e, L) }

// FastTimeBoundSharp is the per-pair form of the Fast analysis: the
// agents meet by round (2j+1)E + τ where j is the first index at which
// their transformed labels differ and τ ≤ E is the delay; j never
// exceeds the length of the shorter transformed label.
func FastTimeBoundSharp(e, labelA, labelB int) int {
	m := min(label.TransformLen(labelA), label.TransformLen(labelB))
	return (2*m+1)*e + e
}

// RelabelingTimeBound is Proposition 2.3's time guarantee: (4t+5)E,
// where t = SmallestT(L, w).
func RelabelingTimeBound(e, L, w int) int {
	return (4*label.SmallestT(L, w) + 5) * e
}

// RelabelingCostClaimed is the combined-cost bound as stated in
// Proposition 2.3: (2w)E — "each label has exactly w(L) 1's, so the
// combined cost incurred by the two agents is at most (2·w(L))E". The
// statement charges each 1 of the new label once, but Algorithm 2's
// schedule T doubles every bit of S (and prepends T[1] = 1), so the
// literal algorithm performs up to 2w+1 explorations per agent. The
// claim is correct asymptotically (Θ(wE) either way) but its constant
// is not achieved by the literal schedule; RelabelingCostSafe bounds
// what the schedule actually incurs, and EXPERIMENTS.md reports
// measurements against both.
func RelabelingCostClaimed(e, w int) int { return 2 * w * e }

// RelabelingCostSafe bounds the combined cost of the literal
// FastWithRelabeling schedule under arbitrary delays: (4w+2)E.
// Derivation: the agents meet by round (2j+1)E+τ where j is the first
// index at which the new labels differ; the shared prefix S[1..j-1]
// contains at most w-1 ones (were it w, the agent with S[j] = 1 would
// have weight w+1), so the agent with S[j] = 1 spends at most
// (1 + 2(w-1) + 2)E = (2w+1)E and the other at most (2w-1)E.
func RelabelingCostSafe(e, w int) int { return (4*w + 2) * e }

// ExplorationLowerBound is the benchmark from Section 1: the cost of any
// rendezvous algorithm is at least E, and so is its time.
func ExplorationLowerBound(e int) int { return e }

// TimeLowerBoundRingOrder gives the order of the Ω(E·log L) time lower
// bound for rings from [26], cited in Section 1.3: E·⌊log L⌋ up to a
// constant. It anchors the "no algorithm is faster than Fast by more
// than a constant" end of the tradeoff curve in the tables.
func TimeLowerBoundRingOrder(e, L int) int { return e * floorLog2(L) }
