package core

import (
	"rendezvous/internal/label"
	"rendezvous/internal/sim"
)

// This file holds ablations of the paper's design choices. Each removes
// one ingredient from an algorithm; the benchmark harness (experiment
// E13) demonstrates what breaks, turning the proofs' motivating remarks
// into measurements:
//
//   - FastUndoubled drops the bit-doubling of Algorithm 2's T vector.
//     The doubling is what aligns an idle window of one agent with a
//     full exploration of the other under wake-up delays up to E;
//     without it the algorithm stays correct for simultaneous start but
//     admits non-meeting executions under delay.
//   - CheapLazy drops Line 1 (the leading exploration) of Algorithm
//     Cheap. The leading exploration is what catches a still-sleeping
//     partner within E rounds; without it the rendezvous still happens
//     eventually (the trailing exploration finds the other agent idle)
//     but the time degrades from (2ℓ+3)E to Ω(τ), unbounded in the
//     delay.

// FastUndoubled is the no-bit-doubling ablation of Algorithm Fast:
// T = (1, S[1..m]) instead of (1, S[1]S[1], ..., S[m]S[m]).
type FastUndoubled struct{}

var _ Algorithm = FastUndoubled{}

// Name implements Algorithm.
func (FastUndoubled) Name() string { return "ablation-fast-undoubled" }

// Schedule implements Algorithm.
func (FastUndoubled) Schedule(l int, params Params) sim.Schedule {
	checkLabel(l, params, "ablation-fast-undoubled")
	s := label.Transform(l)
	t := make([]byte, 0, len(s)+1)
	t = append(t, 1)
	t = append(t, s...)
	return sim.FromBits(t)
}

// CheapLazy is the no-leading-exploration ablation of Algorithm Cheap:
// wait 2ℓE rounds, then explore once.
type CheapLazy struct{}

var _ Algorithm = CheapLazy{}

// Name implements Algorithm.
func (CheapLazy) Name() string { return "ablation-cheap-lazy" }

// Schedule implements Algorithm.
func (CheapLazy) Schedule(l int, params Params) sim.Schedule {
	checkLabel(l, params, "ablation-cheap-lazy")
	sched := make(sim.Schedule, 0, 2*l+1)
	for i := 0; i < 2*l; i++ {
		sched = append(sched, sim.SegmentWait)
	}
	sched = append(sched, sim.SegmentExplore)
	return sched
}
