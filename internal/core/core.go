// Package core implements the primary contribution of Miller & Pelc
// (PODC 2014): the deterministic rendezvous algorithms Cheap, Fast and
// FastWithRelabeling, expressed as schedules of E-round segments over an
// arbitrary EXPLORE procedure.
//
// All three algorithms share the structure "in segment i, either execute
// EXPLORE once or wait E rounds", differing only in which segments are
// explorations:
//
//   - Cheap (Algorithm 1): explore, wait 2ℓ segments, explore —
//     cost ≤ 3E, time ≤ (2L+1)E. A simultaneous-start variant waits
//     (ℓ-1) segments then explores once — cost exactly E, time ≤ LE.
//   - Fast (Algorithm 2): segments follow the doubled prefix-free
//     transformation of the label — time ≤ (4·log(L-1)+9)E and cost at
//     most twice that, both O(E·log L).
//   - FastWithRelabeling(w): relabels agents with fixed-weight-w bit
//     strings of length t (C(t,w) ≥ L) and runs Fast's segment structure
//     on them — cost O(w·E), time ≤ (4t+5)E; for constant w = c this is
//     cost O(E) and time O(L^{1/c}·E), beating both lower-bound curves
//     at once (the separation result of Section 1.3).
//
// The package also provides the unknown-E doubling wrapper from the
// paper's Conclusion and two reference baselines used by the benchmark
// harness.
package core

import (
	"fmt"

	"rendezvous/internal/label"
	"rendezvous/internal/sim"
)

// Params carries the model parameters shared by both agents: the label
// space size L. (E is implied by the Explorer attached to the scenario.)
type Params struct {
	// L is the size of the label space {1..L}.
	L int
}

// Algorithm maps an agent's label to its schedule of E-round segments.
// Implementations must be deterministic and label-respecting: two agents
// with distinct labels executing the same Algorithm must always achieve
// rendezvous.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Schedule returns the segment sequence for the given label. It
	// panics if the label is outside {1..params.L}; label validity is a
	// precondition of the model, not a runtime input.
	Schedule(l int, params Params) sim.Schedule
}

func checkLabel(l int, params Params, algo string) {
	if l < 1 || l > params.L {
		panic(fmt.Sprintf("core: %s: label %d outside {1..%d}", algo, l, params.L))
	}
}

// Cheap is Algorithm 1 of the paper, for arbitrary starting times:
//
//	1: Execute EXPLORE once
//	2: Wait 2ℓE rounds
//	3: Execute EXPLORE once
//
// Proposition 2.1: rendezvous at cost at most 3E and in time at most
// (2ℓ+3)E ≤ (2L+1)E, where ℓ is the smaller label.
type Cheap struct{}

var _ Algorithm = Cheap{}

// Name implements Algorithm.
func (Cheap) Name() string { return "cheap" }

// Schedule implements Algorithm: [explore, wait×2ℓ, explore].
func (Cheap) Schedule(l int, params Params) sim.Schedule {
	checkLabel(l, params, "cheap")
	sched := make(sim.Schedule, 0, 2*l+2)
	sched = append(sched, sim.SegmentExplore)
	for i := 0; i < 2*l; i++ {
		sched = append(sched, sim.SegmentWait)
	}
	sched = append(sched, sim.SegmentExplore)
	return sched
}

// CheapSimultaneous is the simultaneous-start variant of Algorithm
// Cheap: agent ℓ waits (ℓ-1)E rounds and then explores the graph once.
// With simultaneous start this meets at cost exactly E (only the
// smaller-labeled agent ever moves) and in time at most ℓE ≤ LE. It is
// NOT correct under arbitrary wake-up delays; use Cheap there.
type CheapSimultaneous struct{}

var _ Algorithm = CheapSimultaneous{}

// Name implements Algorithm.
func (CheapSimultaneous) Name() string { return "cheap-simultaneous" }

// Schedule implements Algorithm: [wait×(ℓ-1), explore].
func (CheapSimultaneous) Schedule(l int, params Params) sim.Schedule {
	checkLabel(l, params, "cheap-simultaneous")
	sched := make(sim.Schedule, 0, l)
	for i := 0; i < l-1; i++ {
		sched = append(sched, sim.SegmentWait)
	}
	sched = append(sched, sim.SegmentExplore)
	return sched
}

// Fast is Algorithm 2 of the paper:
//
//	1: S[1..m] ← M(ℓ)
//	2: T[1..2m+1] ← (1, S[1], S[1], S[2], S[2], ..., S[m], S[m])
//	3: for i = 1 to 2m+1: if T[i] = 1 execute EXPLORE once, else wait E
//
// where M is the prefix-free transformation of package label.
// Proposition 2.2: time at most (4·log(L-1)+9)E and cost at most twice
// that, both O(E·log L).
type Fast struct{}

var _ Algorithm = Fast{}

// Name implements Algorithm.
func (Fast) Name() string { return "fast" }

// Schedule implements Algorithm.
func (Fast) Schedule(l int, params Params) sim.Schedule {
	checkLabel(l, params, "fast")
	return scheduleFromLabelBits(label.Transform(l))
}

// scheduleFromLabelBits builds T[1..2m+1] = (1, S1, S1, ..., Sm, Sm) and
// maps it to segments (1 → explore, 0 → wait). This is the common layer
// of Fast and FastWithRelabeling.
func scheduleFromLabelBits(s []byte) sim.Schedule {
	t := make([]byte, 0, 2*len(s)+1)
	t = append(t, 1)
	for _, b := range s {
		t = append(t, b, b)
	}
	return sim.FromBits(t)
}

// FastWithRelabeling is the separation algorithm of Section 2: each
// agent is re-labeled with the t-bit characteristic string of the
// lexicographically ℓ-th smallest w(L)-subset of {1..t}, where t is the
// smallest integer with C(t, w(L)) ≥ L, and then executes Fast's segment
// structure on the new label. Every new label has Hamming weight exactly
// w(L), so the combined cost is O(w(L)·E) while the time is at most
// (4t+5)E. For constant w(L) = c: cost O(E), time O(L^{1/c}·E)
// (Corollary 2.1).
type FastWithRelabeling struct {
	// W is the weight function w(L) ≤ L. It must be positive for every L
	// the algorithm is used with.
	W func(L int) int
}

var _ Algorithm = FastWithRelabeling{}

// NewFastWithRelabeling returns the algorithm with the constant weight
// function w(L) = c, the instantiation of Corollary 2.1.
func NewFastWithRelabeling(c int) FastWithRelabeling {
	if c < 1 {
		panic(fmt.Sprintf("core: FastWithRelabeling: constant weight %d < 1", c))
	}
	return FastWithRelabeling{W: func(int) int { return c }}
}

// Name implements Algorithm.
func (f FastWithRelabeling) Name() string { return "fast-with-relabeling" }

// Schedule implements Algorithm.
func (f FastWithRelabeling) Schedule(l int, params Params) sim.Schedule {
	checkLabel(l, params, "fast-with-relabeling")
	w := f.W(params.L)
	if w < 1 {
		panic(fmt.Sprintf("core: fast-with-relabeling: w(%d) = %d < 1", params.L, w))
	}
	if w > params.L {
		panic(fmt.Sprintf("core: fast-with-relabeling: w(%d) = %d exceeds L", params.L, w))
	}
	newLabel, err := label.Relabel(l, params.L, w)
	if err != nil {
		// Relabel only fails on out-of-range inputs, which checkLabel and
		// the w checks above already exclude.
		panic(fmt.Sprintf("core: fast-with-relabeling: %v", err))
	}
	return scheduleFromLabelBits(newLabel)
}

// T returns the relabeled bit-length t = SmallestT(L, w(L)), which
// determines the time bound (4t+5)E of Proposition 2.3.
func (f FastWithRelabeling) T(L int) int {
	return label.SmallestT(L, f.W(L))
}

// WaitForMate is an oracle baseline, not a legal algorithm of the model:
// it assumes each agent knows whether its label is the smaller one (the
// paper's introduction notes that with such knowledge rendezvous reduces
// to graph exploration). The smaller label waits forever; the larger
// explores once. It realises the absolute lower bound time = cost = E
// and anchors the benchmark tables.
type WaitForMate struct{}

var _ Algorithm = WaitForMate{}

// Name implements Algorithm.
func (WaitForMate) Name() string { return "oracle-wait-for-mate" }

// Schedule implements Algorithm. By convention label 1 is "the smaller":
// the benchmark harness only pairs it against larger labels.
func (WaitForMate) Schedule(l int, params Params) sim.Schedule {
	checkLabel(l, params, "oracle-wait-for-mate")
	if l == 1 {
		return sim.Schedule{sim.SegmentWait}
	}
	return sim.Schedule{sim.SegmentExplore}
}

// ExploreForever is a straw-man baseline: every agent explores in every
// segment, for 2L+2 segments. It is incorrect in general (two agents in
// lockstep rotation on a ring never meet) and exists to demonstrate that
// label-based symmetry breaking is necessary; the benchmark harness uses
// it as a negative control.
type ExploreForever struct{}

var _ Algorithm = ExploreForever{}

// Name implements Algorithm.
func (ExploreForever) Name() string { return "strawman-explore-forever" }

// Schedule implements Algorithm.
func (ExploreForever) Schedule(l int, params Params) sim.Schedule {
	checkLabel(l, params, "strawman-explore-forever")
	sched := make(sim.Schedule, 2*params.L+2)
	for i := range sched {
		sched[i] = sim.SegmentExplore
	}
	return sched
}
