package core

import (
	"fmt"
	"strconv"
	"strings"
)

// algorithmNames is the hint printed by AlgorithmByName's errors.
const algorithmNames = "cheap, cheap-sim, cheap-lazy, fast, fast-undoubled, fwr(w) [w >= 1], oracle"

// maxRelabelingWeight bounds the parametric fwr(w) spelling: schedules
// grow with w, and no experiment in the repository goes beyond
// fwr(14), so a cap far above that still stops a hostile name from
// requesting an absurd weight.
const maxRelabelingWeight = 64

// AlgorithmByName resolves the textual algorithm names shared by every
// front end (cmd/rdvsim, the rdvd service, scenario files, and any
// future CLI): one registry, so the supported set cannot drift between
// surfaces. The FastWithRelabeling family is parametric: "fwr(w)" for
// any weight w >= 1 (the legacy spellings fwr1, fwr2, fwr3 remain
// valid).
func AlgorithmByName(name string) (Algorithm, error) {
	switch name {
	case "cheap":
		return Cheap{}, nil
	case "cheap-sim":
		return CheapSimultaneous{}, nil
	case "cheap-lazy":
		return CheapLazy{}, nil
	case "fast":
		return Fast{}, nil
	case "fast-undoubled":
		return FastUndoubled{}, nil
	case "fwr1":
		return NewFastWithRelabeling(1), nil
	case "fwr2":
		return NewFastWithRelabeling(2), nil
	case "fwr3":
		return NewFastWithRelabeling(3), nil
	case "oracle":
		return WaitForMate{}, nil
	case "":
		return nil, fmt.Errorf("core: algorithm name is required (want %s)", algorithmNames)
	}
	if arg, ok := strings.CutPrefix(name, "fwr("); ok {
		if digits, ok := strings.CutSuffix(arg, ")"); ok {
			w, err := strconv.Atoi(digits)
			if err != nil || w < 1 || w > maxRelabelingWeight {
				return nil, fmt.Errorf("core: bad relabeling weight in %q (want fwr(w), 1 <= w <= %d)", name, maxRelabelingWeight)
			}
			return NewFastWithRelabeling(w), nil
		}
	}
	return nil, fmt.Errorf("core: unknown algorithm %q (want %s)", name, algorithmNames)
}
