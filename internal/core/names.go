package core

import "fmt"

// AlgorithmByName resolves the textual algorithm names shared by every
// front end (cmd/rdvsim, the rdvd service, and any future CLI): one
// registry, so the supported set cannot drift between surfaces.
func AlgorithmByName(name string) (Algorithm, error) {
	switch name {
	case "cheap":
		return Cheap{}, nil
	case "cheap-sim":
		return CheapSimultaneous{}, nil
	case "fast":
		return Fast{}, nil
	case "fwr1":
		return NewFastWithRelabeling(1), nil
	case "fwr2":
		return NewFastWithRelabeling(2), nil
	case "fwr3":
		return NewFastWithRelabeling(3), nil
	case "oracle":
		return WaitForMate{}, nil
	case "":
		return nil, fmt.Errorf("core: algorithm name is required (want cheap, cheap-sim, fast, fwr1, fwr2, fwr3 or oracle)")
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q (want cheap, cheap-sim, fast, fwr1, fwr2, fwr3 or oracle)", name)
	}
}
