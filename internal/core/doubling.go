package core

import (
	"fmt"

	"rendezvous/internal/graph"
	"rendezvous/internal/sim"
	"rendezvous/internal/uxs"
)

// DoublingTrajectory compiles the solo trajectory of the unknown-E
// iterated algorithm from the paper's Conclusion: for i = 1..levels, the
// agent runs algo's schedule using EXPLORE_i (duration E_i = R(2^i)) as
// its exploration procedure, then moves on to level i+1. Rendezvous is
// guaranteed during the first level whose size bound 2^i reaches the
// actual graph size; because the E_i grow geometrically, the total time
// and cost telescope to O(time(E_j)) and O(cost(E_j)) for that level j.
func DoublingTrajectory(g *graph.Graph, fam uxs.Family, algo Algorithm, l int, params Params, start, levels int) (sim.Trajectory, error) {
	if levels < 1 {
		return sim.Trajectory{}, fmt.Errorf("core: DoublingTrajectory: need levels >= 1, got %d", levels)
	}
	sched := algo.Schedule(l, params)
	traj := sim.Trajectory{Pos: []int{start}, Moves: []int{0}}
	for i := 1; i <= levels; i++ {
		cur := traj.Pos[len(traj.Pos)-1]
		next, err := sim.CompileTrajectory(g, fam.Level(i), cur, sched)
		if err != nil {
			return sim.Trajectory{}, fmt.Errorf("core: DoublingTrajectory: level %d: %w", i, err)
		}
		traj = traj.Concat(next)
	}
	return traj, nil
}

// DoublingScenario describes one execution of the unknown-E wrapper.
type DoublingScenario struct {
	Graph  *graph.Graph
	Family uxs.Family
	Algo   Algorithm
	Params Params
	A, B   sim.AgentSpec // Schedule fields are ignored; labels drive everything
	// Levels caps the number of iterations compiled. It must be at least
	// Family.LevelFor(n) for rendezvous to be reachable.
	Levels int
}

// RunDoubling executes the unknown-E wrapper for both agents and scans
// for the first meeting, mirroring sim.Run for the iterated algorithm.
func RunDoubling(sc DoublingScenario) (sim.Result, error) {
	if sc.A.Start == sc.B.Start {
		return sim.Result{}, sim.ErrSameStart
	}
	if sc.A.Label == sc.B.Label {
		return sim.Result{}, sim.ErrSameLabel
	}
	if min(sc.A.Wake, sc.B.Wake) != 1 {
		return sim.Result{}, sim.ErrBadWake
	}
	trajA, err := DoublingTrajectory(sc.Graph, sc.Family, sc.Algo, sc.A.Label, sc.Params, sc.A.Start, sc.Levels)
	if err != nil {
		return sim.Result{}, fmt.Errorf("core: RunDoubling: agent A: %w", err)
	}
	trajB, err := DoublingTrajectory(sc.Graph, sc.Family, sc.Algo, sc.B.Label, sc.Params, sc.B.Start, sc.Levels)
	if err != nil {
		return sim.Result{}, fmt.Errorf("core: RunDoubling: agent B: %w", err)
	}
	return sim.Meet(trajA, trajB, sc.A.Wake, sc.B.Wake, false), nil
}
