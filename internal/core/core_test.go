package core

import (
	"math/rand"
	"testing"

	"rendezvous/internal/explore"
	"rendezvous/internal/graph"
	"rendezvous/internal/label"
	"rendezvous/internal/sim"
)

func TestCheapScheduleShape(t *testing.T) {
	params := Params{L: 16}
	for l := 1; l <= 16; l++ {
		sched := Cheap{}.Schedule(l, params)
		if len(sched) != 2*l+2 {
			t.Fatalf("Cheap(%d): %d segments, want %d", l, len(sched), 2*l+2)
		}
		if sched[0] != sim.SegmentExplore || sched[len(sched)-1] != sim.SegmentExplore {
			t.Fatalf("Cheap(%d): schedule must start and end with explore", l)
		}
		for i := 1; i < len(sched)-1; i++ {
			if sched[i] != sim.SegmentWait {
				t.Fatalf("Cheap(%d): segment %d is %v, want wait", l, i, sched[i])
			}
		}
		if got := sched.Explorations(); got != 2 {
			t.Fatalf("Cheap(%d): %d explorations, want 2", l, got)
		}
	}
}

func TestCheapSimultaneousScheduleShape(t *testing.T) {
	params := Params{L: 10}
	for l := 1; l <= 10; l++ {
		sched := CheapSimultaneous{}.Schedule(l, params)
		if len(sched) != l {
			t.Fatalf("CheapSimultaneous(%d): %d segments, want %d", l, len(sched), l)
		}
		if got := sched.Explorations(); got != 1 {
			t.Fatalf("CheapSimultaneous(%d): %d explorations, want exactly 1", l, got)
		}
		if sched[l-1] != sim.SegmentExplore {
			t.Fatalf("CheapSimultaneous(%d): last segment must be the exploration", l)
		}
	}
}

func TestFastScheduleMatchesTransform(t *testing.T) {
	params := Params{L: 64}
	for l := 1; l <= 64; l++ {
		s := label.Transform(l)
		sched := Fast{}.Schedule(l, params)
		if len(sched) != 2*len(s)+1 {
			t.Fatalf("Fast(%d): %d segments, want 2m+1 = %d", l, len(sched), 2*len(s)+1)
		}
		if sched[0] != sim.SegmentExplore {
			t.Fatalf("Fast(%d): T[1] must be 1 (explore)", l)
		}
		for i, b := range s {
			want := sim.SegmentWait
			if b == 1 {
				want = sim.SegmentExplore
			}
			if sched[1+2*i] != want || sched[2+2*i] != want {
				t.Fatalf("Fast(%d): segments %d,%d do not double S[%d] = %d", l, 1+2*i, 2+2*i, i+1, b)
			}
		}
	}
}

func TestFastWithRelabelingScheduleShape(t *testing.T) {
	for _, w := range []int{1, 2, 3} {
		algo := NewFastWithRelabeling(w)
		for _, L := range []int{4, 16, 64} {
			params := Params{L: L}
			tLen := algo.T(L)
			seen := make(map[string]bool, L)
			for l := 1; l <= L; l++ {
				sched := algo.Schedule(l, params)
				if len(sched) != 2*tLen+1 {
					t.Fatalf("FWR(w=%d,L=%d,ℓ=%d): %d segments, want %d", w, L, l, len(sched), 2*tLen+1)
				}
				// Exactly 2w+1 explorations: T[1]=1 plus each of the w set
				// bits doubled.
				if got := sched.Explorations(); got != 2*w+1 {
					t.Fatalf("FWR(w=%d,L=%d,ℓ=%d): %d explorations, want %d", w, L, l, got, 2*w+1)
				}
				key := schedKey(sched)
				if seen[key] {
					t.Fatalf("FWR(w=%d,L=%d,ℓ=%d): schedule collides with an earlier label", w, L, l)
				}
				seen[key] = true
			}
		}
	}
}

func schedKey(s sim.Schedule) string {
	b := make([]byte, len(s))
	for i, seg := range s {
		b[i] = byte(seg)
	}
	return string(b)
}

func TestScheduleLabelValidation(t *testing.T) {
	algos := []Algorithm{Cheap{}, CheapSimultaneous{}, Fast{}, NewFastWithRelabeling(2), WaitForMate{}, ExploreForever{}}
	for _, algo := range algos {
		for _, bad := range []int{0, -1, 9} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s.Schedule(%d, L=8): expected panic", algo.Name(), bad)
					}
				}()
				algo.Schedule(bad, Params{L: 8})
			}()
		}
	}
}

// correctnessSweep verifies that an algorithm always achieves rendezvous
// over an exhaustive space and that every execution respects the given
// bound checks.
func correctnessSweep(t *testing.T, g *graph.Graph, ex explore.Explorer, algo Algorithm, L int, delays []int,
	check func(t *testing.T, wc sim.WorstCase, e int)) {
	t.Helper()
	params := Params{L: L}
	tc := sim.NewTrajectories(g, ex, func(l int) sim.Schedule { return algo.Schedule(l, params) })
	wc, err := sim.Search(tc, sim.SearchSpace{L: L, Delays: delays})
	if err != nil {
		t.Fatal(err)
	}
	if !wc.AllMet {
		t.Fatalf("%s on %v: some executions never meet", algo.Name(), g)
	}
	if check != nil {
		check(t, wc, ex.Duration(g))
	}
}

func testGraphs(t *testing.T) map[string]struct {
	g  *graph.Graph
	ex explore.Explorer
} {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	return map[string]struct {
		g  *graph.Graph
		ex explore.Explorer
	}{
		"oriented-ring-9/sweep": {graph.OrientedRing(9), explore.OrientedRingSweep{}},
		"oriented-ring-9/dfs":   {graph.OrientedRing(9), explore.DFS{}},
		"path-6/dfs":            {graph.Path(6), explore.DFS{}},
		"star-7/dfs":            {graph.Star(7), explore.DFS{}},
		"tree-8/dfs":            {graph.RandomTree(8, rng), explore.DFS{}},
		"torus-3x3/eulerian":    {graph.Torus(3, 3), explore.Eulerian{}},
		"random-8/dfs":          {graph.RandomConnected(8, 0.3, rng), explore.DFS{}},
	}
}

func TestCheapMeetsAndRespectsBounds(t *testing.T) {
	const L = 5
	for name, tg := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			e := tg.ex.Duration(tg.g)
			delays := []int{0, 1, e / 2, e, e + 1, 2 * e}
			correctnessSweep(t, tg.g, tg.ex, Cheap{}, L, delays, func(t *testing.T, wc sim.WorstCase, e int) {
				if wc.Cost.Value > CheapCostBound(e) {
					t.Errorf("worst cost %d exceeds 3E = %d (witness %+v)", wc.Cost.Value, CheapCostBound(e), wc.Cost)
				}
				if wc.Time.Value > CheapWorstTimeBound(e, L) {
					t.Errorf("worst time %d exceeds (2L+1)E = %d (witness %+v)", wc.Time.Value, CheapWorstTimeBound(e, L), wc.Time)
				}
			})
		})
	}
}

func TestCheapPerLabelTimeBound(t *testing.T) {
	// Proposition 2.1's sharp form: time ≤ (2ℓ+3)E with ℓ the smaller label.
	g := graph.OrientedRing(8)
	ex := explore.OrientedRingSweep{}
	e := ex.Duration(g)
	params := Params{L: 6}
	tc := sim.NewTrajectories(g, ex, func(l int) sim.Schedule { return Cheap{}.Schedule(l, params) })
	for a := 1; a <= 6; a++ {
		for b := 1; b <= 6; b++ {
			if a == b {
				continue
			}
			wc, err := sim.Search(tc, sim.SearchSpace{
				LabelPairs: [][2]int{{a, b}},
				Delays:     []int{0, 1, e / 2, e},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !wc.AllMet {
				t.Fatalf("labels (%d,%d): not all met", a, b)
			}
			bound := CheapTimeBound(e, min(a, b))
			if wc.Time.Value > bound {
				t.Errorf("labels (%d,%d): worst time %d exceeds (2ℓ+3)E = %d", a, b, wc.Time.Value, bound)
			}
		}
	}
}

func TestCheapSimultaneousExactCost(t *testing.T) {
	// With simultaneous start the variant has cost exactly E: the smaller
	// agent's single full exploration, the larger agent still parked.
	const L = 6
	for name, tg := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			e := tg.ex.Duration(tg.g)
			params := Params{L: L}
			tc := sim.NewTrajectories(tg.g, tg.ex, func(l int) sim.Schedule { return CheapSimultaneous{}.Schedule(l, params) })
			wc, err := sim.Search(tc, sim.SearchSpace{L: L}) // delays default {0}
			if err != nil {
				t.Fatal(err)
			}
			if !wc.AllMet {
				t.Fatal("not all executions met")
			}
			// "Cost exactly E" (Section 1.3) is a worst-case statement:
			// no execution exceeds E, and an adversarial placement forces
			// the full exploration when the exploration is optimal (the
			// ring sweep). With slack in EXPLORE (e.g. DFS's return trips)
			// the meeting can land mid-exploration at cost < E.
			if wc.Cost.Value > CheapSimultaneousCost(e) {
				t.Errorf("worst cost = %d exceeds E = %d", wc.Cost.Value, e)
			}
			if name == "oriented-ring-9/sweep" && wc.Cost.Value != e {
				t.Errorf("ring sweep: worst cost = %d, want exactly E = %d", wc.Cost.Value, e)
			}
			if wc.Time.Value > CheapSimultaneousTimeBound(e, L-1) {
				t.Errorf("worst time = %d exceeds (L-1)·E = %d", wc.Time.Value, (L-1)*e)
			}
		})
	}
}

func TestCheapSimultaneousPerLabelTime(t *testing.T) {
	g := graph.OrientedRing(10)
	ex := explore.OrientedRingSweep{}
	e := ex.Duration(g)
	params := Params{L: 7}
	tc := sim.NewTrajectories(g, ex, func(l int) sim.Schedule { return CheapSimultaneous{}.Schedule(l, params) })
	for a := 1; a <= 7; a++ {
		for b := 1; b <= 7; b++ {
			if a == b {
				continue
			}
			wc, err := sim.Search(tc, sim.SearchSpace{LabelPairs: [][2]int{{a, b}}})
			if err != nil {
				t.Fatal(err)
			}
			if !wc.AllMet {
				t.Fatalf("labels (%d,%d): not all met", a, b)
			}
			if bound := CheapSimultaneousTimeBound(e, min(a, b)); wc.Time.Value > bound {
				t.Errorf("labels (%d,%d): worst time %d exceeds ℓE = %d", a, b, wc.Time.Value, bound)
			}
		}
	}
}

func TestFastMeetsAndRespectsBounds(t *testing.T) {
	const L = 5
	for name, tg := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			e := tg.ex.Duration(tg.g)
			delays := []int{0, 1, e / 2, e, e + 1, 2 * e}
			correctnessSweep(t, tg.g, tg.ex, Fast{}, L, delays, func(t *testing.T, wc sim.WorstCase, e int) {
				if wc.Time.Value > FastTimeBound(e, L) {
					t.Errorf("worst time %d exceeds (4log(L-1)+9)E = %d", wc.Time.Value, FastTimeBound(e, L))
				}
				if wc.Cost.Value > FastCostBound(e, L) {
					t.Errorf("worst cost %d exceeds (8log(L-1)+18)E = %d", wc.Cost.Value, FastCostBound(e, L))
				}
			})
		})
	}
}

func TestFastSharpPerPairBound(t *testing.T) {
	g := graph.OrientedRing(8)
	ex := explore.OrientedRingSweep{}
	e := ex.Duration(g)
	params := Params{L: 12}
	tc := sim.NewTrajectories(g, ex, func(l int) sim.Schedule { return Fast{}.Schedule(l, params) })
	for a := 1; a <= 12; a++ {
		for b := 1; b <= 12; b++ {
			if a == b {
				continue
			}
			wc, err := sim.Search(tc, sim.SearchSpace{
				LabelPairs: [][2]int{{a, b}},
				Delays:     []int{0, 1, e},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !wc.AllMet {
				t.Fatalf("labels (%d,%d): not all met", a, b)
			}
			if bound := FastTimeBoundSharp(e, a, b); wc.Time.Value > bound {
				t.Errorf("labels (%d,%d): worst time %d exceeds sharp bound %d", a, b, wc.Time.Value, bound)
			}
		}
	}
}

func TestFastWithRelabelingMeetsAndRespectsBounds(t *testing.T) {
	const L = 6
	for _, w := range []int{1, 2, 3} {
		algo := NewFastWithRelabeling(w)
		for name, tg := range testGraphs(t) {
			t.Run(name, func(t *testing.T) {
				e := tg.ex.Duration(tg.g)
				delays := []int{0, 1, e}
				correctnessSweep(t, tg.g, tg.ex, algo, L, delays, func(t *testing.T, wc sim.WorstCase, e int) {
					if wc.Time.Value > RelabelingTimeBound(e, L, w) {
						t.Errorf("w=%d: worst time %d exceeds (4t+5)E = %d", w, wc.Time.Value, RelabelingTimeBound(e, L, w))
					}
					if wc.Cost.Value > RelabelingCostSafe(e, w) {
						t.Errorf("w=%d: worst cost %d exceeds (4w+2)E = %d", w, wc.Cost.Value, RelabelingCostSafe(e, w))
					}
				})
			})
		}
	}
}

func TestWaitForMateIsTheExplorationBaseline(t *testing.T) {
	g := graph.OrientedRing(12)
	ex := explore.OrientedRingSweep{}
	e := ex.Duration(g)
	params := Params{L: 2}
	tc := sim.NewTrajectories(g, ex, func(l int) sim.Schedule { return WaitForMate{}.Schedule(l, params) })
	wc, err := sim.Search(tc, sim.SearchSpace{LabelPairs: [][2]int{{1, 2}, {2, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if !wc.AllMet {
		t.Fatal("oracle baseline failed to meet")
	}
	if wc.Time.Value != e || wc.Cost.Value != e {
		t.Errorf("oracle worst (time,cost) = (%d,%d), want (E,E) = (%d,%d)", wc.Time.Value, wc.Cost.Value, e, e)
	}
}

func TestExploreForeverFailsOnRing(t *testing.T) {
	// Negative control: without label-driven symmetry breaking, lockstep
	// exploration on an oriented ring never meets (Section 1.2's argument
	// for why distinct labels are necessary).
	g := graph.OrientedRing(6)
	params := Params{L: 2}
	tc := sim.NewTrajectories(g, explore.OrientedRingSweep{}, func(l int) sim.Schedule { return ExploreForever{}.Schedule(l, params) })
	wc, err := sim.Search(tc, sim.SearchSpace{L: 2})
	if err != nil {
		t.Fatal(err)
	}
	if wc.AllMet {
		t.Error("label-oblivious lockstep exploration reported as always meeting; symmetry should prevent it")
	}
}

func TestAlgorithmNames(t *testing.T) {
	names := map[string]Algorithm{
		"cheap":                    Cheap{},
		"cheap-simultaneous":       CheapSimultaneous{},
		"fast":                     Fast{},
		"fast-with-relabeling":     NewFastWithRelabeling(2),
		"oracle-wait-for-mate":     WaitForMate{},
		"strawman-explore-forever": ExploreForever{},
	}
	for want, algo := range names {
		if got := algo.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestNewFastWithRelabelingValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFastWithRelabeling(0): expected panic")
		}
	}()
	NewFastWithRelabeling(0)
}
