// Package rendezvous_test hosts the testing.B benchmark harness: one
// benchmark per experiment in DESIGN.md (E1..E14) plus micro-benchmarks
// of the hot paths. The experiment benchmarks run reduced-size versions
// of the sweeps that cmd/rdvbench performs at full size, so
// `go test -bench=.` measures the cost of regenerating each table while
// staying laptop-fast; the full tables (with the paper-bound checks)
// are produced by `go run ./cmd/rdvbench`.
package rendezvous_test

import (
	"math/rand"
	"testing"

	"rendezvous"

	"rendezvous/internal/bench"
	"rendezvous/internal/core"
	"rendezvous/internal/explore"
	"rendezvous/internal/graph"
	"rendezvous/internal/lowerbound"
	"rendezvous/internal/ringsim"
	"rendezvous/internal/sim"
	"rendezvous/internal/uxs"
)

// ringWorstBench exhausts label pairs × ring offsets (and the given
// delays) for one algorithm — the kernel of every table.
func ringWorstBench(b *testing.B, n, L int, algo core.Algorithm, delays []int) {
	b.Helper()
	g := graph.OrientedRing(n)
	params := core.Params{L: L}
	var pairs [][2]int
	for a := 1; a <= L; a++ {
		for bb := 1; bb <= L; bb++ {
			if a != bb {
				pairs = append(pairs, [2]int{a, bb})
			}
		}
	}
	var offsets [][2]int
	for d := 1; d < n; d++ {
		offsets = append(offsets, [2]int{0, d})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc := sim.NewTrajectories(g, explore.OrientedRingSweep{}, func(l int) sim.Schedule {
			return algo.Schedule(l, params)
		})
		wc, err := sim.Search(tc, sim.SearchSpace{LabelPairs: pairs, StartPairs: offsets, Delays: delays})
		if err != nil {
			b.Fatal(err)
		}
		if !wc.AllMet {
			b.Fatal("executions failed to meet")
		}
	}
}

// BenchmarkE1CheapSimultaneous regenerates the E1 row (n=24, L=8):
// simultaneous Cheap, exhaustive label pairs and offsets.
func BenchmarkE1CheapSimultaneous(b *testing.B) {
	ringWorstBench(b, 24, 8, core.CheapSimultaneous{}, []int{0})
}

// BenchmarkE2CheapArbitraryDelay regenerates an E2 row: general Cheap
// under the canonical adversarial delay set.
func BenchmarkE2CheapArbitraryDelay(b *testing.B) {
	e := 23
	ringWorstBench(b, 24, 6, core.Cheap{}, []int{0, 1, e / 2, e, e + 1, 2 * e})
}

// BenchmarkE3Fast regenerates an E3 row: Algorithm Fast at L=32.
func BenchmarkE3Fast(b *testing.B) {
	ringWorstBench(b, 24, 32, core.Fast{}, []int{0, 1, 23})
}

// BenchmarkE4FastWithRelabeling regenerates an E4 row: w=2, L=16.
func BenchmarkE4FastWithRelabeling(b *testing.B) {
	ringWorstBench(b, 24, 16, core.NewFastWithRelabeling(2), []int{0, 1, 23})
}

// BenchmarkE5RelabelScaling measures one scaling point of Corollary 2.1
// (c=2, L=128, sampled pairs).
func BenchmarkE5RelabelScaling(b *testing.B) {
	g := graph.OrientedRing(12)
	algo := core.NewFastWithRelabeling(2)
	params := core.Params{L: 128}
	rng := rand.New(rand.NewSource(1))
	var pairs [][2]int
	for len(pairs) < 40 {
		x, y := rng.Intn(128)+1, rng.Intn(128)+1
		if x != y {
			pairs = append(pairs, [2]int{x, y})
		}
	}
	var offsets [][2]int
	for d := 1; d < 12; d++ {
		offsets = append(offsets, [2]int{0, d})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc := sim.NewTrajectories(g, explore.OrientedRingSweep{}, func(l int) sim.Schedule {
			return algo.Schedule(l, params)
		})
		if _, err := sim.Search(tc, sim.SearchSpace{LabelPairs: pairs, StartPairs: offsets}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6TimeLowerBound runs the Theorem 3.1 pipeline (Trim +
// tournament + Hamiltonian chain) on CheapSimultaneous, n=24, L=16.
func BenchmarkE6TimeLowerBound(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := lowerbound.RunTheorem1(24, 16, core.CheapSimultaneous{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.CertifiedTime <= 0 {
			b.Fatal("vacuous bound")
		}
	}
}

// BenchmarkE7CostLowerBound runs the Theorem 3.2 pipeline (aggregate +
// progress vectors) on Fast, n=24, L=16.
func BenchmarkE7CostLowerBound(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := lowerbound.RunTheorem2(24, 16, core.Fast{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.CertifiedCost <= 0 {
			b.Fatal("vacuous bound")
		}
	}
}

// BenchmarkE8Exploration verifies the full explorer contract (every
// start, exact duration, total coverage) for DFS on a 3x4 grid.
func BenchmarkE8Exploration(b *testing.B) {
	g := graph.Grid(3, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := explore.Verify(explore.DFS{}, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9UnknownE runs the doubling wrapper (unknown graph size) for
// one Fast execution on a 13-ring.
func BenchmarkE9UnknownE(b *testing.B) {
	g := graph.OrientedRing(13)
	fam := uxs.Family{}
	params := core.Params{L: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.RunDoubling(core.DoublingScenario{
			Graph: g, Family: fam, Algo: core.Fast{}, Params: params,
			A:      sim.AgentSpec{Label: 1, Start: 0, Wake: 1},
			B:      sim.AgentSpec{Label: 3, Start: 6, Wake: 1},
			Levels: fam.LevelFor(13) + 1,
		})
		if err != nil || !res.Met {
			b.Fatalf("res %+v err %v", res, err)
		}
	}
}

// BenchmarkE10TradeoffCurve measures one frontier point per algorithm
// class at L=16 on a 24-ring.
func BenchmarkE10TradeoffCurve(b *testing.B) {
	algos := []core.Algorithm{core.CheapSimultaneous{}, core.Cheap{}, core.NewFastWithRelabeling(2), core.Fast{}}
	g := graph.OrientedRing(24)
	params := core.Params{L: 16}
	pairs := [][2]int{{1, 2}, {15, 16}, {7, 11}, {16, 15}}
	offsets := [][2]int{{0, 1}, {0, 12}, {0, 23}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, algo := range algos {
			tc := sim.NewTrajectories(g, explore.OrientedRingSweep{}, func(l int) sim.Schedule {
				return algo.Schedule(l, params)
			})
			if _, err := sim.Search(tc, sim.SearchSpace{LabelPairs: pairs, StartPairs: offsets}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE11Separation compares CheapSimultaneous vs
// FastWithRelabeling(2) worst times at L=64 (the separation's kernel).
func BenchmarkE11Separation(b *testing.B) {
	g := graph.OrientedRing(12)
	params := core.Params{L: 64}
	pairs := [][2]int{{63, 64}, {1, 2}, {31, 32}, {32, 33}}
	offsets := [][2]int{{0, 1}, {0, 6}, {0, 11}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, algo := range []core.Algorithm{core.CheapSimultaneous{}, core.NewFastWithRelabeling(2)} {
			tc := sim.NewTrajectories(g, explore.OrientedRingSweep{}, func(l int) sim.Schedule {
				return algo.Schedule(l, params)
			})
			if _, err := sim.Search(tc, sim.SearchSpace{LabelPairs: pairs, StartPairs: offsets}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE12AlternativeAccounting measures the later-wake accounting
// scan for one Cheap execution sweep.
func BenchmarkE12AlternativeAccounting(b *testing.B) {
	g := graph.OrientedRing(18)
	params := core.Params{L: 6}
	tc := sim.NewTrajectories(g, explore.OrientedRingSweep{}, func(l int) sim.Schedule {
		return core.Cheap{}.Schedule(l, params)
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		trajA, err := tc.Get(3, 0)
		if err != nil {
			b.Fatal(err)
		}
		trajB, err := tc.Get(5, 9)
		if err != nil {
			b.Fatal(err)
		}
		res := sim.Meet(trajA, trajB, 1, 35, false)
		if !res.Met || res.TimeFromLaterWake < 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkE13Ablations measures the ablation sweep kernel (undoubled
// Fast under a full delay range).
func BenchmarkE13Ablations(b *testing.B) {
	g := graph.OrientedRing(24)
	params := core.Params{L: 6}
	delays := []int{0, 5, 11, 17, 23}
	pairs := [][2]int{{1, 2}, {3, 6}, {5, 4}}
	offsets := [][2]int{{0, 1}, {0, 12}, {0, 23}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc := sim.NewTrajectories(g, explore.OrientedRingSweep{}, func(l int) sim.Schedule {
			return core.FastUndoubled{}.Schedule(l, params)
		})
		if _, err := sim.Search(tc, sim.SearchSpace{LabelPairs: pairs, StartPairs: offsets, Delays: delays}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14TradeoffCurveFine measures the segment-level executor's
// sweep at L = 4096 — the workload only ringsim makes feasible.
func BenchmarkE14TradeoffCurveFine(b *testing.B) {
	const n, L = 24, 4096
	algo := core.NewFastWithRelabeling(6)
	params := core.Params{L: L}
	pairs := [][2]int{{1, 2}, {L - 1, L}, {L / 2, L/2 + 1}, {17, 4001}, {2047, 2048}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wc, err := ringsim.Search(n, func(l int) sim.Schedule { return algo.Schedule(l, params) }, pairs, []int{0, 1, n - 1})
		if err != nil || !wc.AllMet {
			b.Fatalf("wc %+v err %v", wc, err)
		}
	}
}

// BenchmarkRingsimVsSim contrasts the segment-level executor against
// the round-level simulator on the same execution (the speedup that
// unlocks E14).
func BenchmarkRingsimVsSim(b *testing.B) {
	const n = 64
	params := core.Params{L: 1024}
	schedA := core.Fast{}.Schedule(777, params)
	schedB := core.Fast{}.Schedule(1000, params)
	b.Run("ringsim", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := ringsim.Run(n,
				ringsim.Agent{Schedule: schedA, Start: 0, Wake: 1},
				ringsim.Agent{Schedule: schedB, Start: 32, Wake: 4})
			if err != nil || !res.Met {
				b.Fatal(err)
			}
		}
	})
	b.Run("sim", func(b *testing.B) {
		g := graph.OrientedRing(n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(sim.Scenario{
				Graph:    g,
				Explorer: explore.OrientedRingSweep{},
				A:        sim.AgentSpec{Label: 1, Start: 0, Wake: 1, Schedule: schedA},
				B:        sim.AgentSpec{Label: 2, Start: 32, Wake: 4, Schedule: schedB},
			})
			if err != nil || !res.Met {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFullHarnessE1 runs the actual E1 experiment end to end (the
// same function cmd/rdvbench calls), as a macro-benchmark of the
// harness itself.
func BenchmarkFullHarnessE1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, err := bench.E1CheapSimultaneous(bench.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Failed()) > 0 {
			b.Fatal("bound checks failed")
		}
	}
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkCompileTrajectoryFast measures schedule compilation for Fast
// (the dominant cost in adversary sweeps).
func BenchmarkCompileTrajectoryFast(b *testing.B) {
	g := graph.OrientedRing(64)
	sched := core.Fast{}.Schedule(999, core.Params{L: 1024})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.CompileTrajectory(g, explore.OrientedRingSweep{}, 0, sched); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeetScan measures the meeting scan of two long trajectories.
func BenchmarkMeetScan(b *testing.B) {
	g := graph.OrientedRing(64)
	params := core.Params{L: 64}
	trajA, err := sim.CompileTrajectory(g, explore.OrientedRingSweep{}, 0, core.Cheap{}.Schedule(63, params))
	if err != nil {
		b.Fatal(err)
	}
	trajB, err := sim.CompileTrajectory(g, explore.OrientedRingSweep{}, 32, core.Cheap{}.Schedule(64, params))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Meet(trajA, trajB, 1, 1, false)
	}
}

// BenchmarkDFSPlan measures DFS plan construction on a 15x15 grid.
func BenchmarkDFSPlan(b *testing.B) {
	g := graph.Grid(15, 15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (explore.DFS{}).Plan(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEulerianPlan measures Eulerian circuit planning on an 8x8
// torus (128 edges).
func BenchmarkEulerianPlan(b *testing.B) {
	g := graph.Torus(8, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (explore.Eulerian{}).Plan(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUXSSearch measures the randomized-greedy UXS search over
// small rings.
func BenchmarkUXSSearch(b *testing.B) {
	collection := []*graph.Graph{graph.OrientedRing(4), graph.OrientedRing(5), graph.OrientedRing(6)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := uxs.Search(collection, 64, 10, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDefineProgress measures Algorithm 3 on a 4096-entry aggregate
// vector.
func BenchmarkDefineProgress(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	agg := make([]int, 4096)
	for i := range agg {
		agg[i] = rng.Intn(3) - 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lowerbound.DefineProgress(agg)
	}
}

// BenchmarkTournamentPath measures Hamiltonian path insertion on a
// 512-vertex random tournament.
func BenchmarkTournamentPath(b *testing.B) {
	const size = 512
	rng := rand.New(rand.NewSource(4))
	beats := make(map[[2]int]bool, size*size/2)
	vertices := make([]int, size)
	for i := range vertices {
		vertices[i] = i + 1
	}
	for i := 1; i <= size; i++ {
		for j := i + 1; j <= size; j++ {
			if rng.Intn(2) == 0 {
				beats[[2]int{i, j}] = true
			} else {
				beats[[2]int{j, i}] = true
			}
		}
	}
	dom := func(a, c int) bool { return beats[[2]int{a, c}] }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := lowerbound.HamiltonianPathInTournament(vertices, dom)
		if len(path) != size {
			b.Fatal("bad path")
		}
	}
}

// BenchmarkPublicAPIQuickstart measures the facade's end-to-end
// quickstart path.
func BenchmarkPublicAPIQuickstart(b *testing.B) {
	g := rendezvous.OrientedRing(24)
	ex := rendezvous.RingSweepExplorer()
	algo := rendezvous.Fast{}
	params := rendezvous.Params{L: 64}
	schedA := algo.Schedule(5, params)
	schedB := algo.Schedule(12, params)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rendezvous.Run(rendezvous.Scenario{
			Graph:    g,
			Explorer: ex,
			A:        rendezvous.AgentSpec{Label: 5, Start: 0, Wake: 1, Schedule: schedA},
			B:        rendezvous.AgentSpec{Label: 12, Start: 13, Wake: 11, Schedule: schedB},
		})
		if err != nil || !res.Met {
			b.Fatalf("res %+v err %v", res, err)
		}
	}
}
