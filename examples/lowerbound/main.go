// Lowerbound: walk through the Section 3 machinery on live algorithms.
//
// Lower bounds cannot be "run" — they quantify over all algorithms —
// but their proofs are constructive, and the constructions can be
// executed against real algorithms:
//
//  1. Theorem 3.1 (any cost-(E+o(E)) algorithm needs time Ω(EL)):
//     derive behaviour vectors of CheapSimultaneous on an oriented ring,
//     Trim them, build the eagerness tournament over clockwise-heavy
//     agents, extract a Hamiltonian chain (Rédei), and watch the chain's
//     execution lengths climb by (F-3ϕ)/2 per step — the certified
//     Ω(EL) staircase.
//
//  2. Theorem 3.2 (any O(E log L)-time algorithm pays cost Ω(E log L)):
//     cut the ring into 6 sectors and time into blocks, aggregate Fast's
//     movement per block, distill progress vectors (Algorithm 3,
//     DefineProgress), and watch their non-zero weight — and hence the
//     certified cost k·E/6 — grow with log L.
//
//     go run ./examples/lowerbound
package main

import (
	"fmt"
	"log"

	"rendezvous/internal/core"
	"rendezvous/internal/lowerbound"
)

func main() {
	const n = 24

	fmt.Println("=== Theorem 3.1: the Ω(EL) time staircase for cheap algorithms ===")
	fmt.Println()
	for _, L := range []int{8, 16, 32} {
		rep, err := lowerbound.RunTheorem1(n, L, core.CheapSimultaneous{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("L=%2d: ϕ=%d, F=%d, chain %v\n", L, rep.Phi, rep.F, rep.Path)
		fmt.Printf("      |α_i| staircase: %v\n", rep.ExecLengths)
		fmt.Printf("      certified time >= %d rounds (%.3f · E·L); observed worst %d\n",
			rep.CertifiedTime, float64(rep.CertifiedTime)/float64(rep.E*L), rep.WorstObservedTime)
		if len(rep.Violations) > 0 {
			log.Fatalf("fact violations: %v", rep.Violations)
		}
	}

	fmt.Println()
	fmt.Println("the same pipeline on Fast (cost >> E+o(E)) certifies nothing —")
	rep, err := lowerbound.RunTheorem1(n, 16, core.Fast{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fast: ϕ=%d (Θ(E log L)), certified bound %d: the hypothesis gates the theorem.\n", rep.Phi, rep.CertifiedTime)

	fmt.Println()
	fmt.Println("=== Theorem 3.2: progress vectors force cost Ω(E log L) on fast algorithms ===")
	fmt.Println()
	for _, L := range []int{4, 16, 64} {
		rep2, err := lowerbound.RunTheorem2(n, L, core.Fast{})
		if err != nil {
			log.Fatal(err)
		}
		x := rep2.MaxNonZeroLabel
		fmt.Printf("L=%2d: pigeonhole group of %d agents over M=%d blocks\n", L, len(rep2.Group), rep2.M)
		fmt.Printf("      heaviest progress vector (label %d): %v\n", x, rep2.Prog[x])
		fmt.Printf("      k=%d crossings certify cost >= k·E/6 = %d; observed solo cost %d\n",
			rep2.NonZero[x]/2, rep2.CertifiedCost, rep2.ObservedSoloCost)
		if len(rep2.Violations) > 0 {
			log.Fatalf("fact violations: %v", rep2.Violations)
		}
		if !rep2.DistinctProgress {
			log.Fatal("progress vectors must be distinct for a correct algorithm (Fact 3.15)")
		}
	}

	fmt.Println()
	fmt.Println("Algorithm 3 (DefineProgress) on a hand-made aggregate vector:")
	agg := []int{1, -1, 1, 1, 0, -1, -1, -1, 1, 1}
	fmt.Printf("  Agg  = %v\n", agg)
	fmt.Printf("  Prog = %v  (oscillation zeroed, sector crossings kept in pairs)\n", lowerbound.DefineProgress(agg))
}
