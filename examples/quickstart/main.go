// Quickstart: two agents with distinct labels rendezvous on a ring.
//
// This is the smallest end-to-end use of the library: build a graph,
// pick an exploration procedure (which fixes the benchmark parameter E),
// pick one of the paper's algorithms, and run a two-agent execution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rendezvous/internal/core"
	"rendezvous/internal/explore"
	"rendezvous/internal/graph"
	"rendezvous/internal/sim"
)

func main() {
	// An oriented ring of 24 anonymous nodes: at every node port 0 goes
	// clockwise. The agents know how to explore it in E = n-1 = 23
	// rounds (walk clockwise), which is the optimal exploration.
	g := graph.OrientedRing(24)
	ex := explore.OrientedRingSweep{}

	// Both agents run Algorithm Fast with labels from {1..64}. Fast
	// guarantees time O(E·log L) and cost O(E·log L) for any delays.
	algo := core.Fast{}
	params := core.Params{L: 64}

	// Agent A (label 5) wakes in round 1 at node 0; agent B (label 12)
	// wakes 10 rounds later at node 13. Neither knows the other exists
	// until they stand on the same node in the same round.
	res, err := sim.Run(sim.Scenario{
		Graph:    g,
		Explorer: ex,
		A:        sim.AgentSpec{Label: 5, Start: 0, Wake: 1, Schedule: algo.Schedule(5, params)},
		B:        sim.AgentSpec{Label: 12, Start: 13, Wake: 11, Schedule: algo.Schedule(12, params)},
	})
	if err != nil {
		log.Fatal(err)
	}

	e := ex.Duration(g)
	fmt.Printf("met: %v at node %d\n", res.Met, res.Node)
	fmt.Printf("time: %d rounds (%.2f·E, paper bound (4·log(L-1)+9)E = %d)\n",
		res.Time(), float64(res.Time())/float64(e), core.FastTimeBound(e, params.L))
	fmt.Printf("cost: %d edge traversals (A: %d, B: %d; paper bound %d)\n",
		res.Cost(), res.CostA, res.CostB, core.FastCostBound(e, params.L))
}
