// Unknownsize: rendezvous when the agents know NOTHING about the graph,
// not even an upper bound on its size — the Conclusion's doubling
// construction.
//
// The agents iterate their algorithm over the exploration hierarchy
// EXPLORE_1, EXPLORE_2, ... where EXPLORE_i handles any graph of size
// at most 2^i in E_i = R(2^i) rounds. Levels too small for the actual
// graph walk blindly without covering it; the first sufficient level
// guarantees the meeting, and geometric growth of E_i telescopes the
// total time and cost into the same complexity class as the known-E run.
//
//	go run ./examples/unknownsize
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rendezvous/internal/core"
	"rendezvous/internal/graph"
	"rendezvous/internal/sim"
	"rendezvous/internal/uxs"
)

func main() {
	fam := uxs.Family{} // R(m) = 2m-2 (DFS-backed simulation of the UXS black box)
	params := core.Params{L: 8}

	fmt.Println("unknown-size rendezvous via iterated EXPLORE_i (Algorithm Fast inside):")
	fmt.Printf("%12s %8s %10s %12s %16s %14s\n", "graph", "n", "level j", "E_j", "doubling time", "direct time")

	for _, n := range []int{5, 9, 17, 33, 65} {
		g := graph.OrientedRing(n)
		level := fam.LevelFor(n)
		ej := fam.Level(level).Duration(g)

		// Unknown size: iterate Fast over levels 1..j (one extra level of
		// headroom compiled, never needed once they meet).
		res, err := core.RunDoubling(core.DoublingScenario{
			Graph:  g,
			Family: fam,
			Algo:   core.Fast{},
			Params: params,
			A:      sim.AgentSpec{Label: 2, Start: 0, Wake: 1},
			B:      sim.AgentSpec{Label: 7, Start: n / 2, Wake: 1},
			Levels: level + 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Met {
			log.Fatalf("ring-%d: doubling wrapper failed to meet", n)
		}

		// Known size: run Fast directly with EXPLORE_j.
		direct, err := sim.Run(sim.Scenario{
			Graph:    g,
			Explorer: fam.Level(level),
			A:        sim.AgentSpec{Label: 2, Start: 0, Wake: 1, Schedule: core.Fast{}.Schedule(2, params)},
			B:        sim.AgentSpec{Label: 7, Start: n / 2, Wake: 1, Schedule: core.Fast{}.Schedule(7, params)},
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%12s %8d %10d %12d %16d %14d\n",
			fmt.Sprintf("ring-%d", n), n, level, ej, res.Time(), direct.Time())
	}

	fmt.Println("\nthe doubling column tracks the direct column within a constant factor:")
	fmt.Println("sum of E_1..E_j <= 2·E_j, so the wasted low levels telescope away.")

	// Bonus: a genuine verified UXS for a small class, found by search.
	collection := []*graph.Graph{
		graph.OrientedRing(4), graph.OrientedRing(5), graph.OrientedRing(6),
		graph.Path(5), graph.Star(5),
	}
	seq, err := uxs.Search(collection, 128, 30, rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nverified UXS for {rings 4-6, path-5, star-5}: %d symbols, universal: %v\n",
		len(seq), uxs.IsUniversal(seq, collection))
}
