// Tradeoff: regenerate the paper's headline picture — the time-versus-
// cost frontier of rendezvous algorithms on one graph.
//
// For a fixed oriented ring and label space, the example measures the
// adversarial worst case (over label pairs, relative starting offsets
// and wake-up delays) of each algorithm and prints the frontier in
// units of E, annotated with the paper's bounds:
//
//   - Cheap:               cost Θ(E),       time Θ(EL)
//   - FastWithRelabeling:  cost Θ(wE),      time Θ(L^{1/w}E)
//   - Fast:                cost Θ(E log L), time Θ(E log L)
//
// Theorems 3.1 and 3.2 say the two ends cannot be improved: this is the
// tradeoff curve, traced by measurement.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"rendezvous/internal/adversary"
	"rendezvous/internal/core"
	"rendezvous/internal/explore"
	"rendezvous/internal/graph"
	"rendezvous/internal/sim"
)

const (
	ringSize   = 24
	labelSpace = 64
)

func main() {
	g := graph.OrientedRing(ringSize)
	ex := explore.OrientedRingSweep{}
	e := ex.Duration(g)
	params := core.Params{L: labelSpace}

	algos := []struct {
		name string
		algo core.Algorithm
	}{
		{"cheap-simultaneous", core.CheapSimultaneous{}},
		{"cheap", core.Cheap{}},
		{"fwr(w=1)", core.NewFastWithRelabeling(1)},
		{"fwr(w=2)", core.NewFastWithRelabeling(2)},
		{"fwr(w=3)", core.NewFastWithRelabeling(3)},
		{"fast", core.Fast{}},
	}

	// Label pairs: the adversarial ones for both ends of the curve.
	var pairs [][2]int
	for a := 1; a <= 16; a++ {
		for b := 1; b <= 16; b++ {
			if a != b {
				pairs = append(pairs, [2]int{a, b})
			}
		}
	}
	pairs = append(pairs, [2]int{labelSpace - 1, labelSpace}, [2]int{labelSpace, labelSpace - 1})

	var offsets [][2]int
	for d := 1; d < ringSize; d++ {
		offsets = append(offsets, [2]int{0, d})
	}

	fmt.Printf("oriented ring n=%d (E=%d), L=%d — worst case over %d label pairs × %d offsets\n\n",
		ringSize, e, labelSpace, len(pairs), len(offsets))
	fmt.Printf("%-20s %10s %10s %12s %12s\n", "algorithm", "cost/E", "time/E", "cost bound", "time bound")

	for _, a := range algos {
		delays := []int{0}
		if a.name != "cheap-simultaneous" { // correct only for simultaneous start
			delays = []int{0, 1, e}
		}
		// The engine shards the sweep across GOMAXPROCS goroutines and,
		// on the oriented ring with the sweep explorer, dispatches every
		// execution to the O(|schedule|) segment-level executor.
		wc, err := adversary.Search(adversary.Spec{
			Graph:       g,
			Explorer:    ex,
			ScheduleFor: func(l int) sim.Schedule { return a.algo.Schedule(l, params) },
		}, sim.SearchSpace{LabelPairs: pairs, StartPairs: offsets, Delays: delays}, adversary.Options{Workers: -1})
		if err != nil {
			log.Fatal(err)
		}
		if !wc.AllMet {
			log.Fatalf("%s: some executions never met", a.name)
		}
		costBound, timeBound := bounds(a.name, e, labelSpace)
		fmt.Printf("%-20s %10.2f %10.2f %12s %12s\n",
			a.name, float64(wc.Cost.Value)/float64(e), float64(wc.Time.Value)/float64(e), costBound, timeBound)
	}

	fmt.Println("\nreading the frontier: each row trades time against cost;")
	fmt.Println("Thm 3.1: no cost-(E+o(E)) algorithm beats time Ω(EL);")
	fmt.Println("Thm 3.2: no O(E log L)-time algorithm beats cost Ω(E log L).")
}

func bounds(name string, e, L int) (string, string) {
	switch name {
	case "cheap-simultaneous":
		return "E", fmt.Sprintf("(L-1)E=%d", (L-1)*e)
	case "cheap":
		return fmt.Sprintf("3E=%d", 3*e), fmt.Sprintf("(2L+1)E=%d", (2*L+1)*e)
	case "fast":
		return fmt.Sprintf("%d", core.FastCostBound(e, L)), fmt.Sprintf("%d", core.FastTimeBound(e, L))
	case "fwr(w=1)":
		return fmt.Sprintf("%d", core.RelabelingCostSafe(e, 1)), fmt.Sprintf("%d", core.RelabelingTimeBound(e, L, 1))
	case "fwr(w=2)":
		return fmt.Sprintf("%d", core.RelabelingCostSafe(e, 2)), fmt.Sprintf("%d", core.RelabelingTimeBound(e, L, 2))
	case "fwr(w=3)":
		return fmt.Sprintf("%d", core.RelabelingCostSafe(e, 3)), fmt.Sprintf("%d", core.RelabelingTimeBound(e, L, 3))
	}
	return "", ""
}
