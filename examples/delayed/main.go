// Delayed: adversarial wake-up delays, the scenario that motivates the
// general (non-simultaneous) algorithms.
//
// The adversary wakes agent B τ rounds after agent A. The example sweeps
// τ on an oriented ring and shows:
//
//   - Algorithm Cheap stays within cost 3E and time (2ℓ+3)E for every τ
//     (Proposition 2.1's case analysis: τ > E means A's first
//     exploration already finds the sleeping B);
//
//   - CheapSimultaneous, correct only for simultaneous start, FAILS at
//     τ = 3E with labels (6, 3): the two lone explorations align
//     exactly, the agents sweep the ring in lockstep, and the meeting
//     never happens — demonstrating why the general algorithm brackets
//     its waiting period with two explorations;
//
//   - the alternative "parachuted" model of the Conclusion, where B is
//     absent before its wake-up, changes outcomes for large τ;
//
//   - the Conclusion's alternative accounting (time from the later
//     agent's wake-up) collapses to 0 once τ is large enough for A to
//     find B asleep.
//
//     go run ./examples/delayed
package main

import (
	"fmt"
	"log"

	"rendezvous/internal/core"
	"rendezvous/internal/explore"
	"rendezvous/internal/graph"
	"rendezvous/internal/sim"
)

func main() {
	g := graph.OrientedRing(18)
	ex := explore.OrientedRingSweep{}
	e := ex.Duration(g)
	params := core.Params{L: 8}

	// Label 6 wakes first; label 3 is delayed. At τ = 3E the lone
	// explorations of the simultaneous variant align: 6 explores rounds
	// [5E+1, 6E], and 3 (shifted by 3E) explores [3E+2E+1, 3E+3E] — the
	// same window. Lockstep clockwise sweeps never meet.
	const labelA, labelB = 6, 3
	startA, startB := 0, g.N()/2

	fmt.Printf("oriented ring n=%d, sweep exploration E=%d, labels (%d,%d), L=%d\n\n",
		g.N(), e, labelA, labelB, params.L)
	fmt.Printf("%8s %26s %30s %12s %12s\n",
		"delay τ", "cheap (time, cost)", "cheap-sim (time, cost)", "parachuted", "t-from-later")

	for _, tau := range []int{0, 1, e / 2, e, 2 * e, 3 * e, 4 * e} {
		cheap := mustRun(g, ex, core.Cheap{}, params, labelA, startA, labelB, startB, tau, false)
		cheapStr := fmt.Sprintf("met @%d cost %d", cheap.Time(), cheap.Cost())
		if !cheap.Met {
			cheapStr = "NO MEETING"
		}

		simul := mustRun(g, ex, core.CheapSimultaneous{}, params, labelA, startA, labelB, startB, tau, false)
		simStr := fmt.Sprintf("met @%d cost %d", simul.Time(), simul.Cost())
		if !simul.Met {
			simStr = "NO MEETING (windows aligned)"
		}

		para := mustRun(g, ex, core.Cheap{}, params, labelA, startA, labelB, startB, tau, true)
		paraStr := fmt.Sprintf("met @%d", para.Time())
		if !para.Met {
			paraStr = "NO MEETING"
		}

		fmt.Printf("%8d %26s %30s %12s %12d\n", tau, cheapStr, simStr, paraStr, cheap.TimeFromLaterWake)

		if !cheap.Met {
			log.Fatalf("Cheap failed to meet at τ=%d — it must be delay-proof", tau)
		}
		if cheap.Cost() > core.CheapCostBound(e) {
			log.Fatalf("Cheap exceeded its 3E cost bound at τ=%d", tau)
		}
		if cheap.Time() > core.CheapTimeBound(e, min(labelA, labelB)) {
			log.Fatalf("Cheap exceeded its (2ℓ+3)E time bound at τ=%d", tau)
		}
	}

	fmt.Println("\nCheap's bracket of explorations makes it delay-proof; the simultaneous")
	fmt.Println("variant saves cost (worst case exactly E) but breaks when the adversary")
	fmt.Println("aligns the lone exploration windows (τ = 3E row).")
}

func mustRun(g *graph.Graph, ex explore.Explorer, algo core.Algorithm, params core.Params,
	labelA, startA, labelB, startB, delay int, parachuted bool) sim.Result {
	res, err := sim.Run(sim.Scenario{
		Graph:      g,
		Explorer:   ex,
		A:          sim.AgentSpec{Label: labelA, Start: startA, Wake: 1, Schedule: algo.Schedule(labelA, params)},
		B:          sim.AgentSpec{Label: labelB, Start: startB, Wake: 1 + delay, Schedule: algo.Schedule(labelB, params)},
		Parachuted: parachuted,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}
