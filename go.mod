module rendezvous

go 1.24
