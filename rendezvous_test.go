package rendezvous_test

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"rendezvous"
	"rendezvous/internal/serve"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quickstart does, across algorithms and graph families.
func TestFacadeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	graphs := map[string]*rendezvous.Graph{
		"ring":  rendezvous.OrientedRing(16),
		"tree":  rendezvous.RandomTree(10, rng),
		"torus": rendezvous.Torus(3, 4),
		"cube":  rendezvous.Hypercube(3),
	}
	params := rendezvous.Params{L: 16}
	algos := []rendezvous.Algorithm{
		rendezvous.Cheap{},
		rendezvous.Fast{},
		rendezvous.NewFastWithRelabeling(2),
	}
	for name, g := range graphs {
		ex := rendezvous.BestExplorer(g, 12)
		if err := rendezvous.VerifyExplorer(ex, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, algo := range algos {
			res, err := rendezvous.Run(rendezvous.Scenario{
				Graph:    g,
				Explorer: ex,
				A:        rendezvous.AgentSpec{Label: 4, Start: 0, Wake: 1, Schedule: algo.Schedule(4, params)},
				B:        rendezvous.AgentSpec{Label: 11, Start: g.N() - 1, Wake: 3, Schedule: algo.Schedule(11, params)},
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, algo.Name(), err)
			}
			if !res.Met {
				t.Errorf("%s/%s: agents never met", name, algo.Name())
			}
			if res.Cost() != res.CostA+res.CostB {
				t.Errorf("%s/%s: cost accounting inconsistent", name, algo.Name())
			}
		}
	}
}

func TestFacadeBounds(t *testing.T) {
	if got, want := rendezvous.CheapCostBound(10), 30; got != want {
		t.Errorf("CheapCostBound(10) = %d, want %d", got, want)
	}
	if got, want := rendezvous.CheapWorstTimeBound(10, 8), 170; got != want {
		t.Errorf("CheapWorstTimeBound = %d, want %d", got, want)
	}
	if got, want := rendezvous.FastTimeBound(10, 16), (4*3+9)*10; got != want {
		t.Errorf("FastTimeBound = %d, want %d", got, want)
	}
	if got := rendezvous.FastCostBound(10, 16); got != 2*rendezvous.FastTimeBound(10, 16) {
		t.Errorf("FastCostBound = %d, want twice the time bound", got)
	}
	if got, want := rendezvous.RelabelingCostSafe(10, 2), 100; got != want {
		t.Errorf("RelabelingCostSafe = %d, want %d", got, want)
	}
}

func TestFacadeTheoremPipelines(t *testing.T) {
	rep1, err := rendezvous.RunTheorem1(12, 8, rendezvous.CheapSimultaneous{})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.CertifiedTime <= 0 {
		t.Error("Theorem 1 pipeline certified nothing for CheapSimultaneous")
	}
	rep2, err := rendezvous.RunTheorem2(12, 8, rendezvous.Fast{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CertifiedCost <= 0 {
		t.Error("Theorem 2 pipeline certified nothing for Fast")
	}
}

func TestFacadeDoubling(t *testing.T) {
	res, err := rendezvous.RunDoubling(rendezvous.DoublingScenario{
		Graph:  rendezvous.OrientedRing(9),
		Family: rendezvous.ExplorationFamily{},
		Algo:   rendezvous.Fast{},
		Params: rendezvous.Params{L: 4},
		A:      rendezvous.AgentSpec{Label: 1, Start: 0, Wake: 1},
		B:      rendezvous.AgentSpec{Label: 3, Start: 4, Wake: 1},
		Levels: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Error("doubling wrapper failed to meet via the facade")
	}
}

// ExampleRun is the godoc quickstart: deterministic rendezvous of labels
// 5 and 12 on an oriented ring.
func ExampleRun() {
	g := rendezvous.OrientedRing(24)
	ex := rendezvous.RingSweepExplorer()
	algo := rendezvous.Fast{}
	params := rendezvous.Params{L: 64}

	res, err := rendezvous.Run(rendezvous.Scenario{
		Graph:    g,
		Explorer: ex,
		A:        rendezvous.AgentSpec{Label: 5, Start: 0, Wake: 1, Schedule: algo.Schedule(5, params)},
		B:        rendezvous.AgentSpec{Label: 12, Start: 13, Wake: 11, Schedule: algo.Schedule(12, params)},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Met, res.Node, res.Time(), res.Cost())
	// Output: true 19 136 241
}

// ExampleCheapSimultaneous shows the cost-optimal simultaneous-start
// variant: only the smaller label ever moves, so the cost is at most E.
func ExampleCheapSimultaneous() {
	g := rendezvous.OrientedRing(12)
	ex := rendezvous.RingSweepExplorer()
	algo := rendezvous.CheapSimultaneous{}
	params := rendezvous.Params{L: 8}

	res, err := rendezvous.Run(rendezvous.Scenario{
		Graph:    g,
		Explorer: ex,
		A:        rendezvous.AgentSpec{Label: 2, Start: 0, Wake: 1, Schedule: algo.Schedule(2, params)},
		B:        rendezvous.AgentSpec{Label: 7, Start: 5, Wake: 1, Schedule: algo.Schedule(7, params)},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("met=%v cost=%d (<= E=%d) movers: A=%d B=%d\n", res.Met, res.Cost(), ex.Duration(g), res.CostA, res.CostB)
	// Output: met=true cost=5 (<= E=11) movers: A=5 B=0
}

// ExampleNewFastWithRelabeling shows the separation algorithm: constant
// cost in units of E with sublinear time in L.
func ExampleNewFastWithRelabeling() {
	algo := rendezvous.NewFastWithRelabeling(2)
	params := rendezvous.Params{L: 100}
	sched := algo.Schedule(42, params)
	fmt.Println("segments:", len(sched), "explorations:", sched.Explorations())
	// Output: segments: 31 explorations: 5
}

// ExampleRunTheorem1 runs the Ω(EL) lower-bound construction against
// the cost-optimal algorithm.
func ExampleRunTheorem1() {
	rep, err := rendezvous.RunTheorem1(12, 8, rendezvous.CheapSimultaneous{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("phi=%d chain=%v certified=%d violations=%d\n",
		rep.Phi, rep.Path, rep.CertifiedTime, len(rep.Violations))
	// Output: phi=0 chain=[1 2 3 4] certified=9 violations=0
}

// TestFacadeSearch exercises the adversary-search surface: Search,
// SearchParallel and SearchWith agree bit-for-bit on rings (fast path),
// grids and random trees (generic path).
func TestFacadeSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cases := []struct {
		name string
		g    *rendezvous.Graph
	}{
		{"ring", rendezvous.OrientedRing(10)},
		{"grid", rendezvous.Grid(3, 3)},
		{"tree", rendezvous.RandomTree(8, rng)},
	}
	params := rendezvous.Params{L: 5}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ex := rendezvous.BestExplorer(tc.g, 0)
			scheduleFor := func(l int) rendezvous.Schedule {
				return rendezvous.Cheap{}.Schedule(l, params)
			}
			space := rendezvous.SearchSpace{L: 5, Delays: []int{0, 2}}
			serial, err := rendezvous.Search(tc.g, ex, scheduleFor, space)
			if err != nil {
				t.Fatal(err)
			}
			if !serial.AllMet || serial.Runs == 0 {
				t.Fatalf("implausible serial result: %+v", serial)
			}
			if serial.Time.Value <= 0 || serial.Cost.Value <= 0 {
				t.Fatalf("missing witnesses: %+v", serial)
			}
			parallel, err := rendezvous.SearchParallel(context.Background(), tc.g, ex, scheduleFor, space, 4)
			if err != nil {
				t.Fatal(err)
			}
			if parallel != serial {
				t.Errorf("SearchParallel diverged:\nserial:   %+v\nparallel: %+v", serial, parallel)
			}
			generic, err := rendezvous.SearchWith(tc.g, ex, scheduleFor, space,
				rendezvous.SearchOptions{Workers: 2, Tier: rendezvous.TierGeneric})
			if err != nil {
				t.Fatal(err)
			}
			if generic != serial {
				t.Errorf("SearchWith(TierGeneric) diverged:\nserial:  %+v\ngeneric: %+v", serial, generic)
			}
		})
	}
}

// TestFacadeSymmetry exercises the symmetry-reduction surface: on a
// vertex-transitive torus the default (automatic) reduction returns
// the identical worst case as the explicitly unreduced search while
// executing n times fewer configurations, and Automorphisms exposes
// the translation group the quotient is taken by.
func TestFacadeSymmetry(t *testing.T) {
	g := rendezvous.Torus(3, 3)
	ex := rendezvous.DFSExplorer()
	params := rendezvous.Params{L: 4}
	scheduleFor := func(l int) rendezvous.Schedule { return rendezvous.Fast{}.Schedule(l, params) }
	space := rendezvous.SearchSpace{L: 4, Delays: []int{0, 1}}

	auts := rendezvous.Automorphisms(g)
	if len(auts) != g.N() {
		t.Fatalf("torus automorphisms = %d, want n = %d translations", len(auts), g.N())
	}
	off, err := rendezvous.SearchWith(g, ex, scheduleFor, space,
		rendezvous.SearchOptions{Symmetry: rendezvous.SymmetryOff})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := rendezvous.SearchWith(g, ex, scheduleFor, space, rendezvous.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Runs*g.N() != off.Runs {
		t.Errorf("Runs = %d, want %d/%d", auto.Runs, off.Runs, g.N())
	}
	auto.Runs = off.Runs
	if auto != off {
		t.Errorf("reduced search changed results:\noff:  %+v\nauto: %+v", off, auto)
	}
	if _, err := rendezvous.SearchWith(g, ex, scheduleFor,
		rendezvous.SearchSpace{L: 4, StartPairs: [][2]int{{2, 2}}},
		rendezvous.SearchOptions{}); err == nil {
		t.Error("equal start pair must be rejected")
	}
}

// TestFacadeMeetOracle exercises the meeting-table surface: the oracle
// replays a scenario bit-for-bit, and SearchWith is invariant under
// every forced tier.
func TestFacadeMeetOracle(t *testing.T) {
	g := rendezvous.Grid(3, 4)
	ex := rendezvous.DFSExplorer()
	oracle, err := rendezvous.NewMeetOracle(g, ex)
	if err != nil {
		t.Fatal(err)
	}
	params := rendezvous.Params{L: 6}
	algo := rendezvous.Fast{}
	sc := rendezvous.Scenario{
		Graph:    g,
		Explorer: ex,
		A:        rendezvous.AgentSpec{Label: 2, Start: 0, Wake: 1, Schedule: algo.Schedule(2, params)},
		B:        rendezvous.AgentSpec{Label: 5, Start: 11, Wake: 9, Schedule: algo.Schedule(5, params)},
	}
	want, err := rendezvous.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := oracle.Run(sc.A, sc.B, sc.Parachuted)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("oracle diverged from Run:\nsim:    %+v\noracle: %+v", want, got)
	}

	scheduleFor := func(l int) rendezvous.Schedule { return algo.Schedule(l, params) }
	space := rendezvous.SearchSpace{L: 4, Delays: []int{0, 1, ex.Duration(g)}}
	ref, err := rendezvous.SearchWith(g, ex, scheduleFor, space,
		rendezvous.SearchOptions{Tier: rendezvous.TierGeneric})
	if err != nil {
		t.Fatal(err)
	}
	for _, tier := range []rendezvous.SearchTier{rendezvous.TierTable, rendezvous.TierBatch, rendezvous.TierAuto} {
		got, err := rendezvous.SearchWith(g, ex, scheduleFor, space,
			rendezvous.SearchOptions{Tier: tier, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Errorf("tier %v diverged:\ngeneric: %+v\ngot:     %+v", tier, ref, got)
		}
	}
}

// TestFacadePersistence exercises the store + checkpoint surface:
// SearchCached round-trips through a store (hit on the second call,
// canonically-equivalent spellings included), and SearchCheckpointed
// resumes to bit-for-bit the Search output.
func TestFacadePersistence(t *testing.T) {
	g := rendezvous.OrientedRing(8)
	ex := rendezvous.RingSweepExplorer()
	params := rendezvous.Params{L: 4}
	algo := rendezvous.Cheap{}
	scheduleFor := func(l int) rendezvous.Schedule { return algo.Schedule(l, params) }
	space := rendezvous.SearchSpace{L: 4, Delays: []int{0, 1}}

	want, err := rendezvous.Search(g, ex, scheduleFor, space)
	if err != nil {
		t.Fatal(err)
	}

	store, err := rendezvous.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, cached, err := rendezvous.SearchCached(store, g, ex, scheduleFor, space, rendezvous.SearchOptions{})
	if err != nil || cached {
		t.Fatalf("cold SearchCached: cached=%v err=%v", cached, err)
	}
	if got != want {
		t.Errorf("cold result diverged: %+v != %+v", got, want)
	}
	got, cached, err = rendezvous.SearchCached(store, g, ex, scheduleFor, space, rendezvous.SearchOptions{})
	if err != nil || !cached {
		t.Fatalf("warm SearchCached: cached=%v err=%v", cached, err)
	}
	if got != want {
		t.Errorf("warm result diverged: %+v != %+v", got, want)
	}

	// Canonicalization: an equivalent explicit spelling of the same
	// space produces the same fingerprint, hence a hit.
	explicit := rendezvous.SearchSpace{Delays: []int{0, 1}}
	explicit.LabelPairs = [][2]int{}
	for a := 1; a <= 4; a++ {
		for b := 1; b <= 4; b++ {
			if a != b {
				explicit.LabelPairs = append(explicit.LabelPairs, [2]int{a, b})
			}
		}
	}
	fp1, err := rendezvous.SearchFingerprint(g, ex, scheduleFor, space, rendezvous.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := rendezvous.SearchFingerprint(g, ex, scheduleFor, explicit, rendezvous.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Errorf("equivalent spellings fingerprinted differently:\n%s\n%s", fp1, fp2)
	}

	// Checkpointed search with progress, no file: same output.
	events := 0
	got, err = rendezvous.SearchCheckpointed(g, ex, scheduleFor, space, rendezvous.SearchOptions{Workers: 2},
		rendezvous.CheckpointConfig{Progress: func(completed, total int) { events++ }})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("SearchCheckpointed diverged: %+v != %+v", got, want)
	}
	if events == 0 {
		t.Error("no progress events reported")
	}
}

// TestFacadeDistributed runs SearchDistributed against two in-process
// worker daemons and checks the merged result is bit-for-bit equal to
// the local Search of the same space — with a mid-search worker kill
// requeueing shards onto the survivor.
func TestFacadeDistributed(t *testing.T) {
	newWorkerDaemon := func() *httptest.Server {
		srv, err := serve.New(serve.Config{MaxConcurrent: 2, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts
	}

	// The local reference: the same search through the Spec-based API.
	g := rendezvous.OrientedRing(8)
	params := rendezvous.Params{L: 4}
	scheduleFor := func(l int) rendezvous.Schedule { return rendezvous.Cheap{}.Schedule(l, params) }
	space := rendezvous.SearchSpace{L: 4, Delays: []int{0, 1}}
	want, err := rendezvous.Search(g, rendezvous.RingSweepExplorer(), scheduleFor, space)
	if err != nil {
		t.Fatal(err)
	}

	req := rendezvous.SearchRequest{
		Graph:     rendezvous.SearchGraphSpec{Family: "ring", N: 8},
		Explorer:  "ring-sweep",
		Algorithm: "cheap",
		L:         4,
		Delays:    []int{0, 1},
	}
	w1, w2 := newWorkerDaemon(), newWorkerDaemon()
	var lastCompleted, total int
	got, err := rendezvous.SearchDistributed(context.Background(), req, rendezvous.DistributedConfig{
		Peers:  []string{w1.URL, w2.URL},
		Shards: 8,
		Progress: func(c, tot int) {
			lastCompleted, total = c, tot
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("SearchDistributed %+v != Search %+v", got, want)
	}
	if lastCompleted != 8 || total != 8 {
		t.Errorf("final progress %d/%d, want 8/8", lastCompleted, total)
	}

	// Kill one worker mid-search: the shards it held requeue onto the
	// survivor and the merge is unchanged.
	w3 := newWorkerDaemon()
	var served atomic.Int32
	var dead atomic.Bool
	inner := newWorkerDaemon()
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if (r.URL.Path == "/shard" && served.Add(1) > 1) || dead.Load() {
			dead.Store(true)
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			panic("hijack failed")
		}
		resp, err := http.Post(inner.URL+r.URL.Path, "application/json", r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	t.Cleanup(dying.Close)
	got, err = rendezvous.SearchDistributed(context.Background(), req, rendezvous.DistributedConfig{
		Peers:         []string{w3.URL, dying.URL},
		Shards:        8,
		ShardTimeout:  30 * time.Second,
		ShardAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("SearchDistributed with worker kill %+v != Search %+v", got, want)
	}

	// No usable peers: a loud error, never a partial result.
	if _, err := rendezvous.SearchDistributed(context.Background(), req, rendezvous.DistributedConfig{}); err == nil {
		t.Error("no peers: want error")
	}
}
